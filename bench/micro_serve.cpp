// Serving-path benchmark behind BENCH_serve.json: a seeded 100-event churn
// script against a resident core::Engine on the Table 3 zoo WAN, comparing
// the engine's delta re-solve latency per event against a cold one-shot
// deploy_greedy of the same merged TDG.
//
// The acceptance bars this file guards: delta re-solve p99 at least 5x
// faster than the cold path's p99 on the same event sequence, every
// post-event incumbent verifier-clean, and the write-ahead journal cheap —
// the same churn under --durability batch must keep its delta p99 within
// 2x of the non-durable run (an epoch-fsync row is reported as
// informational). Quantiles are exact (sorted sample vectors), not
// histogram estimates.
//
// Custom main (no google-benchmark): --json/--seed/--smoke as in the other
// custom-main micro tools; --smoke trims the script for CI smoke lanes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "core/hermes.h"
#include "core/journal.h"
#include "core/verifier.h"
#include "fault/fault.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "util/rng.h"

namespace {

using namespace hermes;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

double exact_quantile(std::vector<double> sample, double q) {
    if (sample.empty()) return 0.0;
    std::sort(sample.begin(), sample.end());
    const double rank = q * static_cast<double>(sample.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sample.size() - 1);
    const double within = rank - static_cast<double>(lo);
    return sample[lo] + (sample[hi] - sample[lo]) * within;
}

struct ChurnResult {
    std::vector<double> delta_seconds;  // per successful epoch, engine path
    std::vector<double> cold_seconds;   // same state, cold deploy_greedy
    int events = 0;
    int applied = 0;
    int verified = 0;
    int delta_epochs = 0;
};

struct ChurnConfig {
    // Null = no journal; otherwise the churn runs durably against a fresh
    // write-ahead log at this path (removed before the run starts).
    const char* journal_path = nullptr;
    core::Durability durability = core::Durability::kBatch;
    bool cold_baseline = false;
};

// The same churn mix as tests/engine_test.cpp and hermes_serve --emit-churn:
// adds, removes, a single-open link fault with recovery, retargets.
ChurnResult run_churn(int events, std::uint64_t seed,
                      const ChurnConfig& config = {}) {
    core::Engine engine(net::table3_topology(1));
    if (config.journal_path != nullptr) {
        std::remove(config.journal_path);
        const std::string tmp = std::string(config.journal_path) + ".tmp";
        std::remove(tmp.c_str());
        core::JournalOptions journal_options;
        journal_options.durability = config.durability;
        journal_options.snapshot_interval = 16;
        auto recovered = engine.recover(config.journal_path, journal_options);
        if (!recovered.ok()) {
            std::fprintf(stderr, "journal open failed: %s\n",
                         recovered.status().message().c_str());
            return {};
        }
    }
    util::SplitMix64 rng(seed);
    ChurnResult result;
    result.events = events;
    std::vector<std::string> installed;
    std::size_t next_tenant = 0;
    bool have_down = false;
    net::SwitchId down_a = 0;
    net::SwitchId down_b = 0;

    for (int event = 0; event < events; ++event) {
        const std::uint64_t roll = rng() % 100;
        core::Engine::Mutation m;
        if (roll < 45 || installed.empty()) {
            prog::Program p = prog::synthetic_program({}, seed, next_tenant);
            std::string name = "t" + std::to_string(next_tenant++);
            p.set_name(name);
            m.kind = core::Engine::Mutation::Kind::kAddProgram;
            m.program = std::move(p);
            m.name = std::move(name);
        } else if (roll < 70) {
            const std::size_t pick =
                static_cast<std::size_t>(rng() % installed.size());
            m.kind = core::Engine::Mutation::Kind::kRemoveProgram;
            m.name = installed[pick];
        } else if (roll < 80 && !have_down) {
            const auto& links = engine.network().links();
            const auto& link = links[rng() % links.size()];
            m.kind = core::Engine::Mutation::Kind::kFault;
            m.fault.kind = fault::FaultKind::kLinkDown;
            m.fault.a = link.a;
            m.fault.b = link.b;
        } else if (have_down) {
            m.kind = core::Engine::Mutation::Kind::kFault;
            m.fault.kind = fault::FaultKind::kLinkUp;
            m.fault.a = down_a;
            m.fault.b = down_b;
        } else {
            m.kind = core::Engine::Mutation::Kind::kRetarget;
        }

        const auto kind = m.kind;
        const std::string touched = m.name;
        const net::SwitchId fa = m.fault.a;
        const net::SwitchId fb = m.fault.b;
        const fault::FaultKind fault_kind = m.fault.kind;

        const auto start = Clock::now();
        auto outcome = engine.apply({std::move(m)});
        const double elapsed = seconds_since(start);
        if (!outcome.ok()) continue;
        ++result.applied;
        if (outcome.value().delta) ++result.delta_epochs;
        result.delta_seconds.push_back(elapsed);

        // Bookkeeping for the generator's state machine.
        if (kind == core::Engine::Mutation::Kind::kAddProgram) {
            installed.push_back(touched);
        } else if (kind == core::Engine::Mutation::Kind::kRemoveProgram) {
            installed.erase(
                std::find(installed.begin(), installed.end(), touched));
        } else if (kind == core::Engine::Mutation::Kind::kFault) {
            if (fault_kind == fault::FaultKind::kLinkDown) {
                have_down = true;
                down_a = fa;
                down_b = fb;
            } else {
                have_down = false;
            }
        }

        // Verifier-clean after every applied event.
        if (engine.program_count() > 0) {
            const core::VerificationReport report = core::verify(
                engine.merged(), engine.network(), engine.incumbent());
            if (report.ok) ++result.verified;
        } else {
            ++result.verified;  // empty incumbent is trivially clean
        }

        // Cold baseline from identical state: one-shot greedy on the same
        // merged TDG and network, private path cache (what a non-resident
        // caller would pay per event).
        if (config.cold_baseline && engine.program_count() > 0) {
            const auto cold_start = Clock::now();
            auto cold = core::try_deploy_greedy(engine.merged(), engine.network());
            result.cold_seconds.push_back(seconds_since(cold_start));
            if (!cold.ok()) {
                std::fprintf(stderr, "cold baseline infeasible at event %d\n",
                             event);
            }
        }
    }
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::ToolArgs args =
        bench::parse_tool_args(argc, argv, "BENCH_serve.json");
    const int events = args.smoke ? 30 : 100;
    const std::uint64_t seed = args.seed.value_or(7);

    ChurnConfig plain;
    plain.cold_baseline = true;
    const ChurnResult churn = run_churn(events, seed, plain);

    // Identical churn, journaled. Batch fsync is the serving default and
    // carries the 2x acceptance bar; epoch fsync (one fsync per epoch) is
    // reported so the durability spectrum is visible in BENCH_serve.json.
    ChurnConfig batch;
    batch.journal_path = "micro_serve_batch.journal";
    batch.durability = core::Durability::kBatch;
    const ChurnResult journaled_batch = run_churn(events, seed, batch);

    ChurnConfig epoch;
    epoch.journal_path = "micro_serve_epoch.journal";
    epoch.durability = core::Durability::kEpoch;
    const ChurnResult journaled_epoch = run_churn(events, seed, epoch);

    for (const char* leftover :
         {"micro_serve_batch.journal", "micro_serve_batch.journal.tmp",
          "micro_serve_epoch.journal", "micro_serve_epoch.journal.tmp"}) {
        std::remove(leftover);
    }

    const double delta_p50 = exact_quantile(churn.delta_seconds, 0.50) * 1e6;
    const double delta_p99 = exact_quantile(churn.delta_seconds, 0.99) * 1e6;
    const double cold_p50 = exact_quantile(churn.cold_seconds, 0.50) * 1e6;
    const double cold_p99 = exact_quantile(churn.cold_seconds, 0.99) * 1e6;
    const double speedup = delta_p99 > 0.0 ? cold_p99 / delta_p99 : 0.0;
    const double batch_p50 =
        exact_quantile(journaled_batch.delta_seconds, 0.50) * 1e6;
    const double batch_p99 =
        exact_quantile(journaled_batch.delta_seconds, 0.99) * 1e6;
    const double epoch_p50 =
        exact_quantile(journaled_epoch.delta_seconds, 0.50) * 1e6;
    const double epoch_p99 =
        exact_quantile(journaled_epoch.delta_seconds, 0.99) * 1e6;
    const double batch_overhead = delta_p99 > 0.0 ? batch_p99 / delta_p99 : 0.0;

    std::printf("micro_serve: %d events, %d applied (%d delta epochs), "
                "%d/%d verifier-clean\n",
                churn.events, churn.applied, churn.delta_epochs, churn.verified,
                churn.applied);
    std::printf("  delta re-solve  p50 %8.1f us   p99 %8.1f us\n", delta_p50,
                delta_p99);
    std::printf("  journaled batch p50 %8.1f us   p99 %8.1f us  (%.2fx, bar: <= 2x)\n",
                batch_p50, batch_p99, batch_overhead);
    std::printf("  journaled epoch p50 %8.1f us   p99 %8.1f us\n", epoch_p50,
                epoch_p99);
    std::printf("  cold greedy     p50 %8.1f us   p99 %8.1f us\n", cold_p50,
                cold_p99);
    std::printf("  p99 speedup     %.1fx (bar: >= 5x)\n", speedup);

    std::vector<bench::BenchRecord> records{
        {"churn_events", static_cast<double>(churn.events), "count"},
        {"applied_epochs", static_cast<double>(churn.applied), "count"},
        {"delta_epochs", static_cast<double>(churn.delta_epochs), "count"},
        {"verified_epochs", static_cast<double>(churn.verified), "count"},
        {"delta_resolve_p50", delta_p50, "us"},
        {"delta_resolve_p99", delta_p99, "us"},
        {"journaled_batch_p50", batch_p50, "us"},
        {"journaled_batch_p99", batch_p99, "us"},
        {"journaled_epoch_p50", epoch_p50, "us"},
        {"journaled_epoch_p99", epoch_p99, "us"},
        {"journal_batch_overhead", batch_overhead, "x"},
        {"cold_greedy_p50", cold_p50, "us"},
        {"cold_greedy_p99", cold_p99, "us"},
        {"delta_p99_speedup", speedup, "x"},
    };
    bench::write_bench_json(args.json_path, "serve_engine", records);

    int failures = 0;
    if (churn.verified != churn.applied) {
        std::fprintf(stderr, "FAIL: %d epochs left an unverified incumbent\n",
                     churn.applied - churn.verified);
        ++failures;
    }
    if (speedup < 5.0) {
        std::fprintf(stderr, "FAIL: delta p99 speedup %.2fx below the 5x bar\n",
                     speedup);
        ++failures;
    }
    if (journaled_batch.applied != churn.applied) {
        std::fprintf(stderr,
                     "FAIL: journaled churn applied %d epochs vs %d plain\n",
                     journaled_batch.applied, churn.applied);
        ++failures;
    }
    if (batch_overhead > 2.0) {
        std::fprintf(stderr,
                     "FAIL: journaled (batch) delta p99 %.2fx the non-durable "
                     "p99, above the 2x bar\n",
                     batch_overhead);
        ++failures;
    }
    return failures == 0 ? 0 : 1;
}
