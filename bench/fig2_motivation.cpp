// Figure 2 (§II-B): impact of the per-packet byte overhead on end-to-end
// performance. One switch looping layer-3 routing five times between two
// hosts; packet sizes 512/1024/1500 B; metadata overhead 28..108 B.
// Prints normalized FCT increase and goodput decrease vs the zero-overhead
// baseline — the series of Fig 2(a) and Fig 2(b).
#include <iostream>

#include "sim/testbed.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    sim::MotivationConfig config;
    config.packets = 20'000;  // paper: 1e6; ratios converge far earlier

    const int packet_sizes[] = {512, 1024, 1500};
    const int overheads[] = {28, 48, 68, 88, 108};

    util::Table fct({"overhead(B)", "512B pkt", "1024B pkt", "1500B pkt"});
    util::Table goodput({"overhead(B)", "512B pkt", "1024B pkt", "1500B pkt"});
    for (const int overhead : overheads) {
        std::vector<std::string> fct_row{util::Table::num(std::int64_t{overhead})};
        std::vector<std::string> gp_row{util::Table::num(std::int64_t{overhead})};
        for (const int size : packet_sizes) {
            const sim::MotivationPoint p = sim::run_motivation(config, size, overhead);
            fct_row.push_back("+" + util::Table::num(p.fct_increase * 100.0, 1) + "%");
            gp_row.push_back("-" + util::Table::num(p.goodput_decrease * 100.0, 1) + "%");
        }
        fct.add_row(std::move(fct_row));
        goodput.add_row(std::move(gp_row));
    }
    fct.print(std::cout, "Fig 2(a): normalized FCT increase vs per-packet overhead");
    std::cout << '\n';
    goodput.print(std::cout,
                  "Fig 2(b): normalized goodput decrease vs per-packet overhead");
    std::cout << "\nPaper reference points: 48B -> ~25% FCT increase / ~20% goodput\n"
                 "decrease (512B packets); 68B -> ~15% FCT / ~16% goodput (mixed).\n";
    return 0;
}
