// Exp#6: switch resource consumption. Deploys ten sketches with SPEED and
// with Hermes, compares total deployed resources against the ground truth
// (the sum of each sketch's isolated consumption), and shows that Hermes'
// inter-switch coordination adds no switch resources — and that merging
// (shared hash stages) actually reduces them.
#include <iostream>

#include "baselines/network_wide.h"
#include "core/hermes.h"
#include "prog/library.h"
#include "sim/testbed.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    const std::vector<prog::Program> sketches = prog::sketch_programs();

    // Ground truth: each sketch deployed alone, no coordination.
    double isolated_total = 0.0;
    for (const prog::Program& p : sketches) {
        isolated_total += p.to_tdg().total_resource_units();
    }

    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 6;
    const net::Network n = sim::make_testbed(config);

    // Hermes (merged, greedy).
    const tdg::Tdg merged = core::analyze(sketches);
    const core::DeployOutcome hermes_outcome = core::try_deploy_greedy(merged, n).value();

    // SPEED (merged, latency-objective ILP).
    baselines::NetworkWideStrategy speed("SPEED", core::P1Objective::kMinLatency);
    baselines::BaselineOptions options;
    options.milp.time_limit_seconds = 10.0;
    options.segment_level = false;
    options.candidate_limit = 3;
    const baselines::StrategyOutcome speed_outcome = speed.deploy(sketches, n, options);

    util::Table table({"deployment", "resource units deployed", "vs ground truth"});
    auto pct = [&](double v) {
        return util::Table::num((v / isolated_total - 1.0) * 100.0, 1) + "%";
    };
    table.add_row({"ground truth (isolated sketches)", util::Table::num(isolated_total, 2),
                   "+0.0%"});
    table.add_row({"SPEED", util::Table::num(speed_outcome.merged.total_resource_units(), 2),
                   pct(speed_outcome.merged.total_resource_units())});
    table.add_row({"Hermes", util::Table::num(merged.total_resource_units(), 2),
                   pct(merged.total_resource_units())});
    table.print(std::cout, "Exp#6: switch resource consumption, ten sketches");

    std::cout << "\nHermes switches occupied: "
              << hermes_outcome.metrics.occupied_switches
              << ", per-packet overhead: "
              << hermes_outcome.metrics.max_pair_metadata_bytes << " B\n";
    std::cout << "Finding (paper): the inter-switch coordination of Hermes inserts no\n"
                 "additional logic, so it consumes no switch resources beyond the\n"
                 "programs themselves; merging shared hash MATs *reduces* consumption\n"
                 "below the isolated ground truth.\n";
    return 0;
}
