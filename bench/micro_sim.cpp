// Microbenchmarks for the sharded traffic engine: single-flow adapter
// throughput, arena/heap churn, and contended WAN runs. Has a custom main:
// after the google-benchmark suites it writes a BENCH_sim.json
// perf-trajectory summary — a million-flow run over the largest Table III
// WAN with events/sec, flows/sec, fast-path hit rate, a worker-thread
// ladder whose FCTs are asserted bit-identical to the single-thread run,
// and a shard-count sweep (pass --sweep-only to skip the google-benchmark
// portion, --smoke for a short CI check that exits nonzero when results
// diverge across thread counts). Accepts the common tool flags
// --threads/--seed and the obs exports --trace-out/--metrics-out
// (bench_util.h); unknown flags other than --benchmark_* exit 2.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <optional>
#include <thread>

#include "bench_util.h"
#include "net/path_oracle.h"
#include "net/topozoo.h"
#include "sim/arena.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace {

using namespace hermes;

// The largest (by node count) of the ten Table III WANs.
int largest_topology_id() {
    int best = 1;
    for (int id = 2; id <= net::kTopologyCount; ++id) {
        if (net::table3_shape(id).nodes > net::table3_shape(best).nodes) best = id;
    }
    return best;
}

// A deterministic heavy-traffic workload on one WAN covering the engine's
// three delivery regimes: `shared` flows cycle over `routes` interned
// shortest paths staggered 1us apart (dense cross-route contention — the
// event loop's regime), `grouped` flows ride group-private 5-hop routes in
// paced trains whose head is spaced beyond any flow's occupancy (the
// time-serialized analytic admission's regime) with a 2us-spaced burst tail
// that genuinely contends, and `privates` flows each ride an exclusive
// route (the classic alone fast path). The fast-path hit rate of the mix is
// therefore a behavioral measurement — it moves when admission eligibility
// changes — not an echo of the class sizes.
struct Workload {
    net::Network net;
    int routes = 0;
    std::int64_t shared = 0;
    std::int64_t grouped = 0;
    std::int64_t privates = 0;
};

Workload make_workload(std::int64_t shared, std::int64_t grouped,
                       std::int64_t privates, int routes, std::uint64_t seed) {
    return Workload{net::table3_topology(largest_topology_id(), seed), routes,
                    shared, grouped, privates};
}

// Flows per group-private route: a paced head the serialized admission can
// prove disjoint, then a burst tail it must hand to the event loop.
constexpr std::int64_t kGroupFlows = 196;
constexpr std::int64_t kGroupHead = 156;

std::vector<double> run_workload(const Workload& w, int threads, int shards,
                                 sim::EngineStats* stats_out,
                                 obs::Sink* sink = nullptr) {
    sim::EngineConfig config;
    config.threads = threads;
    config.shards = shards;
    config.sink = sink;
    sim::Engine engine(config);
    sim::PathInterner interner;
    net::PathOracle oracle(w.net);
    util::SplitMix64 rng(0x51bad6e4);
    const auto n = static_cast<net::SwitchId>(w.net.switch_count());
    std::vector<sim::RouteId> routes;
    routes.reserve(static_cast<std::size_t>(w.routes));
    while (routes.size() < static_cast<std::size_t>(w.routes)) {
        const auto a = static_cast<net::SwitchId>(rng.uniform_int(0, n - 1));
        const auto b = static_cast<net::SwitchId>(rng.uniform_int(0, n - 1));
        if (a == b) continue;
        const auto path = oracle.path(a, b);
        if (!path) continue;  // Table III graphs are connected; defensive
        routes.push_back(interner.add_path(engine, w.net, *path));
    }
    std::vector<sim::FlowId> flows;
    flows.reserve(static_cast<std::size_t>(w.shared + w.privates));
    for (std::int64_t i = 0; i < w.shared; ++i) {
        sim::FlowSpec spec;
        spec.payload_bytes_total = 1460 * (1 + static_cast<int>(i % 61));
        spec.overhead_bytes = static_cast<int>(i % 96);
        const sim::RouteId route = routes[static_cast<std::size_t>(i) % routes.size()];
        flows.push_back(engine.add_flow(spec, route, static_cast<double>(i)));
    }
    sim::RouteId group_route = 0;
    for (std::int64_t i = 0; i < w.grouped; ++i) {
        const std::int64_t g = i / kGroupFlows;
        const std::int64_t j = i % kGroupFlows;
        if (j == 0) {
            group_route = engine.add_route(
                std::vector<sim::HopSpec>(5, sim::HopSpec{2.0, 1.0}));
        }
        sim::FlowSpec spec;
        spec.payload_bytes_total = 1460 * (1 + static_cast<int>(i % 61));
        // 12us pacing exceeds the largest flow's transmitter occupancy
        // (61 packets x 0.12us), so the head of each train serializes; the
        // 2us tail overlaps for all but the smallest payloads and falls back
        // to the event loop.
        const double start =
            static_cast<double>(g) * 37.0 +
            (j < kGroupHead
                 ? static_cast<double>(j) * 12.0
                 : static_cast<double>(kGroupHead) * 12.0 +
                       static_cast<double>(j - kGroupHead) * 2.0);
        flows.push_back(engine.add_flow(spec, group_route, start));
    }
    for (std::int64_t i = 0; i < w.privates; ++i) {
        sim::FlowSpec spec;
        spec.payload_bytes_total = 1460 * (1 + static_cast<int>(i % 13));
        const sim::RouteId route = engine.add_route(
            std::vector<sim::HopSpec>(5, sim::HopSpec{2.0, 1.0}));
        flows.push_back(engine.add_flow(spec, route, static_cast<double>(i)));
    }
    engine.run();
    if (stats_out != nullptr) *stats_out = engine.stats();
    std::vector<double> fct;
    fct.reserve(flows.size());
    for (const sim::FlowId id : flows) fct.push_back(engine.result(id).fct_us);
    return fct;
}

void BM_SingleFlowAdapter(benchmark::State& state) {
    sim::FlowSpec spec;
    spec.payload_bytes_total = 1460 * state.range(0);
    const std::vector<sim::HopSpec> hops(5, sim::HopSpec{0.5, 1.0});
    for (auto _ : state) {
        const sim::FlowResult r = sim::simulate_flow(hops, spec);
        benchmark::DoNotOptimize(r.fct_us);
    }
    state.counters["packets"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SingleFlowAdapter)->Arg(10)->Arg(1000)->Arg(100000);

void BM_ArenaChurn(benchmark::State& state) {
    sim::Arena<sim::BatchEvent> arena;
    for (auto _ : state) {
        std::uint32_t slots[64];
        for (auto& s : slots) s = arena.alloc();
        for (const auto s : slots) arena.free(s);
        benchmark::DoNotOptimize(slots[0]);
    }
}
BENCHMARK(BM_ArenaChurn);

void BM_ContendedWan(benchmark::State& state) {
    const auto flows = static_cast<std::int64_t>(state.range(0));
    const Workload w = make_workload(flows, 0, 0, 64, 0x7e23);
    sim::EngineStats stats;
    for (auto _ : state) {
        const auto fct = run_workload(w, 1, 0, &stats);
        benchmark::DoNotOptimize(fct.data());
    }
    state.counters["events"] = static_cast<double>(stats.events);
}
BENCHMARK(BM_ContendedWan)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

// The BENCH_sim.json trajectory: one million flows (850k contended over 512
// interned WAN routes + 100k in paced group trains + 50k on private
// fast-path routes) across a worker ladder, with the single-thread FCT
// vector as the bit-identity baseline, plus a shard-count sweep at fixed
// threads. Returns nonzero when any multi-thread run diverges from the
// single-thread results.
int run_sweeps(const std::string& path, std::uint64_t seed) {
    std::vector<bench::BenchRecord> records;
    records.push_back({"machine_hardware_concurrency",
                       static_cast<double>(std::thread::hardware_concurrency()),
                       "threads"});
    const int topo = largest_topology_id();
    records.push_back({"wan_topology_id", static_cast<double>(topo), "id"});
    records.push_back(
        {"wan_nodes", static_cast<double>(net::table3_shape(topo).nodes), "nodes"});

    const Workload w = make_workload(850000, 100000, 50000, 512, seed);
    int failures = 0;
    std::vector<double> baseline;
    double threads1_secs = 0.0;
    double best_multi_secs = 1e18;
    for (const int threads : {1, 2, 4, 8}) {
        sim::EngineStats stats;
        const auto start = std::chrono::steady_clock::now();
        const std::vector<double> fct = run_workload(w, threads, 0, &stats);
        const double secs = seconds_since(start);
        const std::string tag = "flows1m_threads" + std::to_string(threads);
        records.push_back({tag + "_seconds", secs, "s"});
        records.push_back(
            {tag + "_events_per_sec", static_cast<double>(stats.events) / secs, "ev/s"});
        records.push_back(
            {tag + "_flows_per_sec", static_cast<double>(stats.flows) / secs, "fl/s"});
        std::cout << tag << ": " << secs << " s, " << stats.events << " events, "
                  << stats.shards << " shards, " << stats.window_syncs
                  << " windows\n";
        if (threads == 1) {
            threads1_secs = secs;
            baseline = fct;
            records.push_back({"flows1m_flows", static_cast<double>(stats.flows),
                               "flows"});
            records.push_back({"flows1m_packets", static_cast<double>(stats.packets),
                               "packets"});
            records.push_back({"flows1m_events", static_cast<double>(stats.events),
                               "events"});
            records.push_back({"flows1m_fastpath_rate",
                               static_cast<double>(stats.fastpath_flows) /
                                   static_cast<double>(stats.flows),
                               "ratio"});
            records.push_back({"flows1m_fastpath_serialized",
                               static_cast<double>(stats.fastpath_serialized),
                               "flows"});
        } else {
            best_multi_secs = std::min(best_multi_secs, secs);
            if (fct != baseline) {
                std::cout << "FAIL: threads=" << threads
                          << " FCTs diverge from the single-thread run\n";
                ++failures;
            }
        }
    }
    records.push_back({"flows1m_thread_speedup", threads1_secs / best_multi_secs, "x"});
    records.push_back({"flows1m_deterministic", failures == 0 ? 1.0 : 0.0, "bool"});

    // Shard-count sweep at two workers: more shards = smaller windows but
    // better balance; results must stay bit-identical throughout.
    const Workload small = make_workload(80000, 10000, 10000, 256, seed);
    const std::vector<double> shard_baseline = run_workload(small, 1, 1, nullptr);
    for (const int shards : {2, 8, 32}) {
        sim::EngineStats stats;
        const auto start = std::chrono::steady_clock::now();
        const std::vector<double> fct = run_workload(small, 2, shards, &stats);
        const double secs = seconds_since(start);
        records.push_back({"flows100k_shards" + std::to_string(shards) + "_seconds",
                           secs, "s"});
        std::cout << "flows100k shards=" << shards << ": " << secs << " s, "
                  << stats.window_syncs << " windows\n";
        if (fct != shard_baseline) {
            std::cout << "FAIL: shards=" << shards << " FCTs diverge\n";
            ++failures;
        }
    }

    bench::write_bench_json(path, "traffic_engine", records);
    std::cout << "wrote " << path << "\n";
    return failures == 0 ? 0 : 1;
}

// CI smoke: a 20k-flow run compared bit-for-bit across two thread counts,
// recorded through an obs::Sink so the CI job can jq-assert the sim.*
// counters; exits nonzero on divergence or a failed export.
int run_smoke(const bench::ToolArgs& args) {
    int failures = 0;
    std::optional<obs::Sink> sink_storage;
    obs::Sink* sink = nullptr;
    if (!args.trace_out.empty() || !args.metrics_out.empty()) {
        sink = &sink_storage.emplace();
        sink->name_thread("main");
    }
    const Workload w =
        make_workload(16000, 2000, 2000, 128, args.seed.value_or(0x7e23));
    const std::vector<double> one = run_workload(w, 1, 0, nullptr);
    sim::EngineStats stats;
    const int threads = args.threads.value_or(2);
    const std::vector<double> multi = run_workload(w, threads, 0, &stats, sink);
    std::cout << "smoke: " << stats.flows << " flows, " << stats.events
              << " events, " << stats.fastpath_flows << " fast-path ("
              << stats.fastpath_serialized << " serialized), " << stats.shards
              << " shards, " << stats.window_syncs << " windows\n";
    if (multi != one) {
        std::cout << "FAIL: threads=" << threads
                  << " FCTs diverge from the single-thread run\n";
        ++failures;
    }
    if (stats.events <= 0 || stats.fastpath_flows <= 0) {
        std::cout << "FAIL: degenerate run (no events or no fast-path flows)\n";
        ++failures;
    }
    if (stats.fastpath_serialized <= 0) {
        std::cout << "FAIL: time-serialized admission never engaged — the "
                     "fast-path rate is an echo of the class sizes again\n";
        ++failures;
    }
    if (sink != nullptr) {
        sink->counter("sim.smoke_deterministic").add(failures == 0 ? 1 : 0);
    }
    if (!bench::write_obs_exports(sink, args.trace_out, args.metrics_out)) ++failures;
    std::cout << (failures == 0 ? "smoke OK\n" : "smoke FAILED\n");
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::ToolArgs args = bench::parse_tool_args(argc, argv, "BENCH_sim.json");
    if (args.smoke) return run_smoke(args);
    int pass_argc = static_cast<int>(args.passthrough.size());
    std::vector<char*> passthrough = args.passthrough;
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (!args.sweep_only) benchmark::RunSpecifiedBenchmarks();
    return run_sweeps(args.json_path, args.seed.value_or(0x7e23));
}
