// Microbenchmarks for the Hermes core pipeline: analysis/merging, TDG
// splitting, the greedy heuristic end to end, and path enumeration.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/hermes.h"
#include "core/verifier.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"

namespace {

using namespace hermes;

void BM_AnalyzePrograms(benchmark::State& state) {
    const auto count = static_cast<int>(state.range(0));
    const auto programs = prog::paper_workload(count, 99);
    for (auto _ : state) {
        const tdg::Tdg t = core::analyze(programs);
        benchmark::DoNotOptimize(t.node_count());
    }
    state.counters["programs"] = count;
}
BENCHMARK(BM_AnalyzePrograms)->Arg(5)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_SplitTdgMinCut(benchmark::State& state) {
    const tdg::Tdg t = core::analyze(prog::paper_workload(static_cast<int>(state.range(0)), 3));
    std::vector<tdg::NodeId> all(t.node_count());
    std::iota(all.begin(), all.end(), tdg::NodeId{0});
    for (auto _ : state) {
        const auto segments = core::split_tdg(t, all, 12, 1.0);
        benchmark::DoNotOptimize(segments.size());
    }
    state.counters["nodes"] = static_cast<double>(t.node_count());
}
BENCHMARK(BM_SplitTdgMinCut)->Arg(10)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_GreedyDeployWan(benchmark::State& state) {
    const tdg::Tdg t = core::analyze(prog::paper_workload(static_cast<int>(state.range(0)), 5));
    const net::Network n = net::table3_topology(10);
    std::size_t switches = 0;
    for (auto _ : state) {
        const core::GreedyResult r = core::greedy_deploy(t, n);
        switches = r.deployment.occupied_switches().size();
        benchmark::DoNotOptimize(switches);
    }
    state.counters["switches_used"] = static_cast<double>(switches);
}
BENCHMARK(BM_GreedyDeployWan)->Arg(10)->Arg(30)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_KShortestPaths(benchmark::State& state) {
    const net::Network n = net::table3_topology(7);
    const auto k = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const auto paths = net::k_shortest_paths(n, 0, n.switch_count() - 1, k);
        benchmark::DoNotOptimize(paths.size());
    }
}
BENCHMARK(BM_KShortestPaths)->Arg(1)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_VerifyDeployment(benchmark::State& state) {
    const tdg::Tdg t = core::analyze(prog::paper_workload(30, 5));
    const net::Network n = net::table3_topology(10);
    const core::GreedyResult r = core::greedy_deploy(t, n);
    for (auto _ : state) {
        const core::VerificationReport report = core::verify(t, n, r.deployment);
        benchmark::DoNotOptimize(report.ok);
    }
}
BENCHMARK(BM_VerifyDeployment)->Unit(benchmark::kMillisecond);

}  // namespace
