#include "bench_util.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>

#include "obs/export.h"
#include "util/strings.h"

namespace hermes::bench {

namespace {

SolutionRow make_row(const std::string& name, const tdg::Tdg& t, const net::Network& net,
                     const core::Deployment& d, double seconds, const std::string& status,
                     net::PathOracle& oracle) {
    SolutionRow row;
    row.name = name;
    row.metrics = core::evaluate(t, net, d);
    row.solve_seconds = seconds;
    row.status = status;
    row.verified = core::verify(t, net, d).ok;
    row.hops = sim::deployment_hops(t, net, d, &oracle);
    return row;
}

SolutionRow failed_row(const std::string& name, const std::string& why) {
    SolutionRow row;
    row.name = name;
    row.status = "failed(" + why + ")";
    return row;
}

}  // namespace

std::vector<SolutionRow> run_all_solutions(const std::vector<prog::Program>& programs,
                                           const net::Network& net,
                                           const RunConfig& config) {
    std::vector<SolutionRow> rows;

    // One path cache serves every solution on this network: the solvers,
    // the baselines' route wiring, and the hop expansion all ask the same
    // Dijkstra questions.
    net::PathOracle oracle(net);
    core::HermesOptions hermes_options = config.hermes;
    if (!hermes_options.oracle) hermes_options.oracle = &oracle;
    baselines::BaselineOptions baseline_options = config.baseline;
    if (!baseline_options.oracle) baseline_options.oracle = &oracle;

    const tdg::Tdg merged = core::analyze(programs);
    try {
        const core::DeployOutcome g = core::try_deploy_greedy(merged, net, hermes_options).value();
        rows.push_back(make_row("Hermes", merged, net, g.deployment, g.solve_seconds,
                                g.solver_status, oracle));
    } catch (const std::exception& ex) {
        rows.push_back(failed_row("Hermes", ex.what()));
    }
    if (config.include_optimal) {
        try {
            const core::DeployOutcome o = core::try_deploy_optimal(merged, net, hermes_options).value();
            rows.push_back(make_row("Optimal", merged, net, o.deployment, o.solve_seconds,
                                    o.solver_status, oracle));
        } catch (const std::exception& ex) {
            rows.push_back(failed_row("Optimal", ex.what()));
        }
    }
    if (config.include_baselines) {
        for (const auto& strategy : baselines::all_strategies()) {
            try {
                const baselines::StrategyOutcome outcome =
                    strategy->deploy(programs, net, baseline_options);
                rows.push_back(make_row(strategy->name(), outcome.merged, net,
                                        outcome.deployment, outcome.solve_seconds,
                                        outcome.status, oracle));
            } catch (const std::exception& ex) {
                rows.push_back(failed_row(strategy->name(), ex.what()));
            }
        }
    }
    return rows;
}

void simulate_rows(std::vector<SolutionRow>& rows, const sim::FlowSpec& base_spec) {
    for (SolutionRow& row : rows) {
        if (row.hops.empty()) continue;
        sim::FlowSpec spec = base_spec;
        spec.overhead_bytes = static_cast<int>(row.metrics.max_inflight_metadata_bytes);
        if (spec.mtu_bytes - spec.base_header_bytes - spec.overhead_bytes <= 0) {
            continue;  // overhead beyond MTU: leave the row unsimulated
        }
        const sim::FlowResult r = sim::simulate_flow(row.hops, spec);
        row.fct_us = r.fct_us;
        // Steady-state goodput: the sustained payload fraction of line rate.
        // (Message-size goodput over WAN paths is dominated by propagation
        // delay — hop count — which says nothing about header overhead.)
        row.goodput_gbps = 100.0 * static_cast<double>(r.payload_per_packet) /
                           static_cast<double>(r.payload_per_packet +
                                               spec.base_header_bytes +
                                               spec.overhead_bytes);
    }
}

void print_rows(std::ostream& os, const std::string& title,
                const std::vector<SolutionRow>& rows, bool with_flows) {
    std::vector<std::string> headers{"solution",   "overhead(B)", "inflight(B)",
                                     "time(ms)",   "switches",    "latency(us)",
                                     "verified",   "status"};
    if (with_flows) {
        headers.push_back("fct(us)");
        headers.push_back("goodput(Gbps)");
    }
    util::Table table(headers);
    for (const SolutionRow& row : rows) {
        std::vector<std::string> cells{
            row.name,
            util::Table::num(row.metrics.max_pair_metadata_bytes),
            util::Table::num(row.metrics.max_inflight_metadata_bytes),
            util::Table::num(row.solve_seconds * 1e3, 2),
            util::Table::num(row.metrics.occupied_switches),
            util::Table::num(row.metrics.route_latency_us, 1),
            row.verified ? "yes" : "NO",
            row.status,
        };
        if (with_flows) {
            cells.push_back(util::Table::num(row.fct_us, 1));
            cells.push_back(util::Table::num(row.goodput_gbps, 2));
        }
        table.add_row(std::move(cells));
    }
    table.print(os, title);
    os << '\n';
}

void write_bench_json(const std::string& path, const std::string& suite,
                      const std::vector<BenchRecord>& records) {
    std::ofstream out(path);
    out << "{\n  \"suite\": \"" << suite << "\",\n  \"records\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchRecord& r = records[i];
        out << "    {\"name\": \"" << r.name << "\", \"value\": "
            << std::setprecision(10) << r.value << ", \"unit\": \"" << r.unit
            << "\"}" << (i + 1 < records.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
}

namespace {

// Matches "--name value" and "--name=value"; advances i past a consumed
// separate value. Exits 2 on a missing value so the caller never sees one.
bool match_value_flag(int argc, char** argv, int& i, const char* name,
                      std::string& out) {
    const char* arg = argv[i];
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return false;
    if (arg[len] == '\0') {
        if (i + 1 >= argc) {
            std::cerr << "error: missing value after " << name << "\n";
            std::exit(2);
        }
        out = argv[++i];
        return true;
    }
    if (arg[len] == '=') {
        out = arg + len + 1;
        return true;
    }
    return false;
}

}  // namespace

ToolArgs parse_tool_args(int argc, char** argv, const std::string& default_json) {
    ToolArgs args;
    args.json_path = default_json;
    if (argc > 0) args.passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        std::string value;
        if (std::strcmp(arg, "--sweep-only") == 0) {
            args.sweep_only = true;
        } else if (std::strcmp(arg, "--smoke") == 0) {
            args.smoke = true;
        } else if (match_value_flag(argc, argv, i, "--json", value)) {
            args.json_path = value;
        } else if (match_value_flag(argc, argv, i, "--threads", value)) {
            args.threads = static_cast<int>(util::parse_int(value));
        } else if (match_value_flag(argc, argv, i, "--seed", value)) {
            args.seed = static_cast<std::uint64_t>(util::parse_int(value));
        } else if (match_value_flag(argc, argv, i, "--time-limit", value)) {
            args.time_limit_seconds = util::parse_double(value);
        } else if (match_value_flag(argc, argv, i, "--trace-out", value)) {
            args.trace_out = value;
        } else if (match_value_flag(argc, argv, i, "--metrics-out", value)) {
            args.metrics_out = value;
        } else if (std::strncmp(arg, "--benchmark_", 12) == 0) {
            args.passthrough.push_back(argv[i]);
        } else {
            std::cerr << "error: unknown option '" << arg << "'\n";
            std::exit(2);
        }
    }
    return args;
}

bool write_obs_exports(const obs::Sink* sink, const std::string& trace_out,
                       const std::string& metrics_out) {
    if (sink == nullptr) return true;
    bool ok = true;
    if (!trace_out.empty() && !obs::write_chrome_trace_file(*sink, trace_out)) {
        std::cerr << "error: cannot write trace to '" << trace_out << "'\n";
        ok = false;
    }
    if (!metrics_out.empty() && !obs::write_metrics_json_file(*sink, metrics_out)) {
        std::cerr << "error: cannot write metrics to '" << metrics_out << "'\n";
        ok = false;
    }
    return ok;
}

}  // namespace hermes::bench
