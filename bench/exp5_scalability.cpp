// Exp#5 / Figure 9: scalability. Varies the number of concurrently deployed
// programs from 10 to 50 on Table III topology 10 and reports overhead,
// execution time, FCT, and goodput per solution.
#include <iostream>

#include "bench_util.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    const net::Network n = net::table3_topology(10);
    // One shared path cache for the whole sweep: the topology never changes,
    // so the Dijkstra trees of the first program count answer every later
    // count (and all ten solutions) from cache.
    net::PathOracle oracle(n);

    bench::RunConfig config;
    config.baseline.milp.time_limit_seconds = 3.0;
    config.baseline.segment_level = true;
    config.baseline.candidate_limit = 0;  // auto: segments + slack
    config.baseline.oracle = &oracle;
    config.hermes.segment_level_milp = true;
    config.hermes.candidate_limit = 0;   // auto
    config.hermes.milp.time_limit_seconds = 3.0;
    config.hermes.oracle = &oracle;
    // Scalability sweep: give the ILP paths and the greedy anchor search
    // every core.
    config.baseline.milp.threads = 0;
    config.hermes.milp.threads = 0;
    config.hermes.threads = 0;

    sim::FlowSpec flow;
    flow.mtu_bytes = 1024;
    flow.payload_bytes_total = 8 << 20;  // 8 MB message per flow

    const std::vector<std::string> headers{"programs", "Hermes", "Optimal", "MS",
                                           "Sonata",   "SPEED",  "MTP",     "FP",
                                           "P4All",    "FFL",    "FFLS"};
    util::Table overhead(headers), exec_time(headers), fct(headers), goodput(headers);

    for (int count = 10; count <= 50; count += 10) {
        const auto programs = prog::paper_workload(count, 0xbeef);
        auto rows = bench::run_all_solutions(programs, n, config);
        bench::simulate_rows(rows, flow);
        std::vector<std::string> oh{util::Table::num(std::int64_t{count})};
        std::vector<std::string> tm{util::Table::num(std::int64_t{count})};
        std::vector<std::string> fc{util::Table::num(std::int64_t{count})};
        std::vector<std::string> gp{util::Table::num(std::int64_t{count})};
        for (const auto& row : rows) {
            oh.push_back(util::Table::num(row.metrics.max_pair_metadata_bytes));
            std::string cell = util::Table::num(row.solve_seconds * 1e3, 1);
            if (row.status.find("time-limit") != std::string::npos) cell += "*";
            tm.push_back(std::move(cell));
            const bool fits_mtu = row.goodput_gbps > 0.0;
            fc.push_back(fits_mtu ? util::Table::num(row.fct_us / 1e3, 1) : ">MTU");
            gp.push_back(fits_mtu ? util::Table::num(row.goodput_gbps, 2) : ">MTU");
        }
        std::cout << "[programs " << count << " done]" << std::endl;
        overhead.add_row(std::move(oh));
        exec_time.add_row(std::move(tm));
        fct.add_row(std::move(fc));
        goodput.add_row(std::move(gp));
    }
    overhead.print(std::cout, "Exp#5 (Fig 9a): per-packet byte overhead (bytes)");
    std::cout << '\n';
    exec_time.print(std::cout,
                    "Exp#5 (Fig 9b): execution time (ms; * = budget clipped)");
    std::cout << '\n';
    fct.print(std::cout, "Exp#5 (Fig 9c): flow completion time (ms)");
    std::cout << '\n';
    goodput.print(std::cout, "Exp#5 (Fig 9d): goodput (Gbps)");
    std::cout << "\nExpected shape (paper): Hermes' execution time grows gracefully with\n"
                 "program count while keeping the lowest overhead in all cases.\n";
    return 0;
}
