// Exp#4 / Figure 8: impact on end-to-end performance at scale, on a
// representative subset of the Table III topologies (the full ten-topology
// FCT/goodput tables are produced in one pass by exp2_overhead).
#include <iostream>

#include "bench_util.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "sim/engine.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    bench::RunConfig config;
    config.baseline.milp.time_limit_seconds = 3.0;
    config.baseline.segment_level = true;
    config.baseline.candidate_limit = 0;  // auto: segments + slack
    config.hermes.segment_level_milp = true;
    config.hermes.candidate_limit = 0;
    config.hermes.milp.time_limit_seconds = 3.0;

    sim::FlowSpec flow;
    flow.mtu_bytes = 1024;  // the paper measures 1024-byte packets here
    flow.payload_bytes_total = 8 << 20;  // 8 MB message per flow

    util::Table fct({"topology", "Hermes", "Optimal", "MS", "Sonata", "SPEED", "MTP",
                     "FP", "P4All", "FFL", "FFLS"});
    util::Table goodput = fct;
    util::Table load({"solution", "1-flow FCT(ms)", "64-flow makespan(ms)",
                      "events", "window syncs"});
    for (const int id : {3, 6, 9}) {
        const auto programs = prog::paper_workload(50, 0xbeef + id);
        const net::Network n = net::table3_topology(id);
        auto rows = bench::run_all_solutions(programs, n, config);
        bench::simulate_rows(rows, flow);
        if (id == 3) {
            // Concurrent-load companion (sim::Engine): 64 back-to-back flows
            // share the deployment's route and contend for its links.
            for (const auto& row : rows) {
                if (row.hops.empty() || row.goodput_gbps <= 0.0) continue;
                sim::FlowSpec spec = flow;
                spec.overhead_bytes =
                    static_cast<int>(row.metrics.max_inflight_metadata_bytes);
                sim::EngineConfig engine_config;
                engine_config.threads = 2;
                sim::Engine engine(engine_config);
                const sim::RouteId route = engine.add_route(row.hops);
                for (int i = 0; i < 64; ++i) {
                    (void)engine.add_flow(spec, route, 50.0 * i);
                }
                engine.run();
                load.add_row({row.name, util::Table::num(row.fct_us / 1e3, 1),
                              util::Table::num(engine.stats().horizon_us / 1e3, 1),
                              util::Table::num(engine.stats().events),
                              util::Table::num(engine.stats().window_syncs)});
            }
        }
        std::vector<std::string> fct_cells{util::Table::num(std::int64_t{id})};
        std::vector<std::string> gp_cells{util::Table::num(std::int64_t{id})};
        for (const auto& row : rows) {
            const bool fits_mtu = row.goodput_gbps > 0.0;
            fct_cells.push_back(fits_mtu ? util::Table::num(row.fct_us / 1e3, 1) : ">MTU");
            gp_cells.push_back(fits_mtu ? util::Table::num(row.goodput_gbps, 2) : ">MTU");
        }
        fct.add_row(std::move(fct_cells));
        goodput.add_row(std::move(gp_cells));
        std::cout << "[topology " << id << " done]" << std::endl;
    }
    std::cout << '\n';
    fct.print(std::cout,
              "Exp#4 (Fig 8a): flow completion time (ms), 1024B packets, "
              "representative topologies");
    std::cout << '\n';
    goodput.print(std::cout, "Exp#4 (Fig 8b): goodput (Gbps), 1024B packets");
    std::cout << '\n';
    load.print(std::cout,
               "Exp#4 companion: 64 concurrent flows per deployment (topology 3, "
               "50us launch interval, sim::Engine)");
    std::cout << "\nExpected shape (paper): Hermes' lower metadata overhead yields the\n"
                 "lowest FCT / highest goodput; overhead-heavy solutions lose up to\n"
                 "~145% relative performance.\n";
    return 0;
}
