// Exp#3 / Figure 7: execution time at scale, on a representative subset of
// the Table III topologies (the full ten-topology sweep — including the
// execution-time table — is produced in one pass by exp2_overhead; this
// binary keeps a fast dedicated entry point for the figure).
#include <iostream>

#include "bench_util.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    bench::RunConfig config;
    config.baseline.milp.time_limit_seconds = 5.0;
    config.baseline.segment_level = true;
    config.baseline.candidate_limit = 0;  // auto: segments + slack
    config.hermes.segment_level_milp = true;
    config.hermes.candidate_limit = 0;
    config.hermes.milp.time_limit_seconds = 5.0;
    // Execution time is the subject here: give the ILP paths every core.
    config.baseline.milp.threads = 0;
    config.hermes.milp.threads = 0;

    util::Table table({"topology", "Hermes", "Optimal", "MS", "Sonata", "SPEED", "MTP",
                       "FP", "P4All", "FFL", "FFLS"});
    for (const int id : {2, 5, 8}) {
        const auto programs = prog::paper_workload(50, 0xbeef + id);
        const net::Network n = net::table3_topology(id);
        const auto rows = bench::run_all_solutions(programs, n, config);
        std::vector<std::string> cells{util::Table::num(std::int64_t{id})};
        for (const auto& row : rows) {
            std::string cell = util::Table::num(row.solve_seconds * 1e3, 1);
            if (row.status.find("time-limit") != std::string::npos) cell += " (clipped)";
            cells.push_back(std::move(cell));
        }
        table.add_row(std::move(cells));
        std::cout << "[topology " << id << " done]" << std::endl;
    }
    std::cout << '\n';
    table.print(std::cout,
                "Exp#3 (Fig 7): execution time (ms), 50 programs, representative "
                "topologies (full sweep: exp2_overhead)");
    std::cout << "\nExpected shape (paper): FFL/FFLS fastest; the Hermes heuristic in\n"
                 "the same ballpark (<= ~2s); every ILP-based framework orders of\n"
                 "magnitude slower, hitting its budget at network scale (clipped).\n";
    return 0;
}
