// Microbenchmarks for the self-healing repair path: damage classification,
// the reroute-only and re-placement rungs of the repair ladder, and the
// PathOracle's selective invalidation against a cold rebuild after a fault.
//
// Standard google-benchmark main; run with --benchmark_filter=... to focus.
#include <benchmark/benchmark.h>

#include "core/hermes.h"
#include "core/repair.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "net/path_oracle.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"

namespace {

using namespace hermes;

struct Instance {
    net::Network net;
    tdg::Tdg merged;
    core::Deployment deployment;
};

Instance wan_instance(int topology, int programs) {
    Instance inst{net::table3_topology(topology),
                  core::analyze(prog::paper_workload(programs, 11)),
                  {}};
    // Cap per-switch stages so the deployment spreads over several switches
    // and records inter-switch routes (otherwise one WAN switch swallows the
    // whole workload and there is nothing to reroute).
    for (net::SwitchId u = 0; u < inst.net.switch_count(); ++u) {
        inst.net.props(u).stages = 4;
    }
    inst.net.bump_epoch();
    inst.deployment = core::try_deploy_greedy(inst.merged, inst.net).value().deployment;
    return inst;
}

void BM_ClassifyDamage(benchmark::State& state) {
    Instance inst = wan_instance(static_cast<int>(state.range(0)), 8);
    const net::SwitchId victim = inst.deployment.occupied_switches().front();
    inst.net.fail_switch(victim);
    for (auto _ : state) {
        const auto damage =
            core::classify_damage(inst.merged, inst.net, inst.deployment);
        benchmark::DoNotOptimize(damage);
    }
    state.counters["mats"] = static_cast<double>(inst.merged.node_count());
}
BENCHMARK(BM_ClassifyDamage)->Arg(3)->Arg(10)->Unit(benchmark::kMicrosecond);

// Reroute-only rung: a link on a recorded route dies, both endpoints
// survive, and the repair just re-wires the dead pairs.
void BM_RepairReroute(benchmark::State& state) {
    Instance inst = wan_instance(static_cast<int>(state.range(0)), 8);
    net::PathOracle oracle(inst.net);
    core::RepairOptions options;
    options.oracle = &oracle;
    // Find a failable route edge whose loss keeps the repair reroute-only.
    fault::Injector injector(inst.net, &oracle);
    net::SwitchId a = 0, b = 0;
    for (const auto& [pair, route] : inst.deployment.routes) {
        if (route.switches.size() < 2) continue;
        a = route.switches[0];
        b = route.switches[1];
        break;
    }
    if (a == b) {
        state.SkipWithError("no multi-hop route in the instance");
        return;
    }
    for (auto _ : state) {
        state.PauseTiming();
        injector.apply({0.0, fault::FaultKind::kLinkDown, a, b});
        state.ResumeTiming();
        const core::RepairResult r =
            core::repair(inst.merged, inst.net, inst.deployment, options);
        benchmark::DoNotOptimize(r);
        state.PauseTiming();
        injector.apply({0.0, fault::FaultKind::kLinkUp, a, b});
        state.ResumeTiming();
    }
}
BENCHMARK(BM_RepairReroute)->Arg(3)->Arg(10)->Unit(benchmark::kMicrosecond);

// Full re-placement rung: the anchor switch dies and every stranded MAT
// moves to a survivor.
void BM_RepairReplace(benchmark::State& state) {
    Instance inst = wan_instance(static_cast<int>(state.range(0)), 8);
    net::PathOracle oracle(inst.net);
    fault::Injector injector(inst.net, &oracle);
    core::RepairOptions options;
    options.oracle = &oracle;
    const net::SwitchId victim = inst.deployment.occupied_switches().front();
    for (auto _ : state) {
        state.PauseTiming();
        injector.apply({0.0, fault::FaultKind::kSwitchDown, victim, 0});
        state.ResumeTiming();
        const core::RepairResult r =
            core::repair(inst.merged, inst.net, inst.deployment, options);
        benchmark::DoNotOptimize(r);
        state.PauseTiming();
        injector.apply({0.0, fault::FaultKind::kSwitchUp, victim, 0});
        state.ResumeTiming();
    }
}
BENCHMARK(BM_RepairReplace)->Arg(3)->Arg(10)->Unit(benchmark::kMillisecond);

// Selective invalidation: cost of one link fail/recover round trip through
// the oracle's eviction path with all trees warm, vs rebuilding from cold.
void BM_OracleSelectiveInvalidation(benchmark::State& state) {
    net::Network n = net::table3_topology(static_cast<int>(state.range(0)));
    net::PathOracle oracle(n);
    for (net::SwitchId s = 0; s < n.switch_count(); ++s) (void)oracle.latencies(s);
    const net::Link link = n.links().front();
    for (auto _ : state) {
        n.fail_link(link.a, link.b);
        oracle.on_link_down(link.a, link.b);
        benchmark::DoNotOptimize(oracle.path_latency(link.a, link.b));
        n.recover_link(link.a, link.b);
        oracle.on_link_up(link.a, link.b);
        benchmark::DoNotOptimize(oracle.path_latency(link.a, link.b));
    }
    state.counters["switches"] = static_cast<double>(n.switch_count());
}
BENCHMARK(BM_OracleSelectiveInvalidation)->Arg(3)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_OracleColdRebuild(benchmark::State& state) {
    net::Network n = net::table3_topology(static_cast<int>(state.range(0)));
    const net::Link link = n.links().front();
    for (auto _ : state) {
        n.fail_link(link.a, link.b);
        net::PathOracle oracle(n);
        for (net::SwitchId s = 0; s < n.switch_count(); ++s) (void)oracle.latencies(s);
        benchmark::DoNotOptimize(oracle.path_latency(link.a, link.b));
        n.recover_link(link.a, link.b);
    }
    state.counters["switches"] = static_cast<double>(n.switch_count());
}
BENCHMARK(BM_OracleColdRebuild)->Arg(3)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_RandomScriptGeneration(benchmark::State& state) {
    const net::Network n = net::table3_topology(10);
    fault::ScriptConfig config;
    config.events = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto script = fault::random_fault_script(n, 7, config);
        benchmark::DoNotOptimize(script);
    }
}
BENCHMARK(BM_RandomScriptGeneration)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

}  // namespace
