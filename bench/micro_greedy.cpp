// Microbenchmarks for Algorithm 2's splitting pipeline and anchor search.
//
// Google-benchmark suites compare the indexed splitter/coalescer against the
// retained seed implementations (core/greedy_reference.h) and sweep the
// anchor-search thread count. The custom main then runs timed end-to-end
// sweeps over TDG size x topology size — the 3-switch testbed, a k=4
// fat-tree, and Topology-Zoo scale (Table III topology 10) — and writes the
// before/after trajectory to BENCH_greedy.json (pass --sweep-only to skip
// the google-benchmark portion, --json=PATH to redirect the output).
// Accepts the common tool flags --threads/--seed/--time-limit and the obs
// exports --trace-out/--metrics-out (see bench_util.h); unknown flags other
// than --benchmark_* exit 2.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/greedy_reference.h"
#include "net/builders.h"
#include "net/path_oracle.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"
#include "tdg/analyzer.h"
#include "util/rng.h"

namespace {

using namespace hermes;

tdg::Tdg workload_tdg(int programs, std::uint64_t seed) {
    std::vector<tdg::Tdg> tdgs;
    for (const auto& p : prog::paper_workload(programs, seed)) {
        tdgs.push_back(p.to_tdg());
    }
    return tdg::analyze_programs(std::move(tdgs));
}

std::vector<tdg::NodeId> all_nodes(const tdg::Tdg& t) {
    std::vector<tdg::NodeId> nodes(t.node_count());
    for (tdg::NodeId v = 0; v < t.node_count(); ++v) nodes[v] = v;
    return nodes;
}

void BM_SplitTdgIndexed(benchmark::State& state) {
    const tdg::Tdg t = workload_tdg(static_cast<int>(state.range(0)), 0xbeef);
    for (auto _ : state) {
        const auto segments = core::split_tdg(t, all_nodes(t), 12, 4.0);
        benchmark::DoNotOptimize(segments);
    }
    state.counters["mats"] = static_cast<double>(t.node_count());
}
BENCHMARK(BM_SplitTdgIndexed)->Arg(10)->Arg(30)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_SplitTdgReference(benchmark::State& state) {
    const tdg::Tdg t = workload_tdg(static_cast<int>(state.range(0)), 0xbeef);
    for (auto _ : state) {
        const auto segments = core::reference::split_tdg(t, all_nodes(t), 12, 4.0);
        benchmark::DoNotOptimize(segments);
    }
    state.counters["mats"] = static_cast<double>(t.node_count());
}
BENCHMARK(BM_SplitTdgReference)->Arg(10)->Arg(30)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_AnchorSearchThreads(benchmark::State& state) {
    const tdg::Tdg t = workload_tdg(30, 0xbeef);
    const net::Network n = net::table3_topology(10);
    auto segments = core::split_tdg(t, all_nodes(t), 12, 1.0);
    core::GreedyOptions options;
    options.threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        net::PathOracle oracle(n);  // cold cache: measure the full search
        const auto result =
            core::deploy_segments_on_chain(t, n, segments, options, &oracle);
        benchmark::DoNotOptimize(result.anchor);
    }
    state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AnchorSearchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

struct SweepInstance {
    std::string name;
    net::Network network;
    int programs;
};

// End-to-end greedy_deploy, seed pipeline vs indexed + oracle + threads,
// per instance. Results must agree (the equivalence suite enforces it; here
// we cross-check the anchor as a cheap canary). The indexed runs record
// through `sink` (null = off), so --metrics-out captures the greedy.* and
// oracle.* counters of the sweep.
void run_sweeps(const bench::ToolArgs& args) {
    std::vector<bench::BenchRecord> records;

    std::optional<obs::Sink> sink_storage;
    obs::Sink* sink = nullptr;
    if (!args.trace_out.empty() || !args.metrics_out.empty()) {
        sink = &sink_storage.emplace();
        sink->name_thread("main");
    }
    const std::uint64_t workload_seed = args.seed.value_or(0xbeef);

    util::SplitMix64 rng(0x9e1);
    net::TopologyConfig tconfig;
    std::vector<SweepInstance> instances;
    instances.push_back({"testbed", sim::make_testbed({}), 8});
    instances.push_back({"fat_tree_k4", net::fat_tree_topology(4, tconfig, rng), 20});
    instances.push_back({"zoo_t10", net::table3_topology(10), 50});

    double largest_speedup = 0.0;
    for (const SweepInstance& inst : instances) {
        const tdg::Tdg t = workload_tdg(inst.programs, workload_seed);

        const auto before_start = std::chrono::steady_clock::now();
        const core::GreedyResult before = core::reference::greedy_deploy(t, inst.network);
        const double before_secs = seconds_since(before_start);

        net::PathOracle oracle(inst.network);
        core::GreedyOptions options;
        options.threads = args.threads.value_or(0);  // default: all cores
        options.sink = sink;
        const auto after_start = std::chrono::steady_clock::now();
        const core::GreedyResult after = core::greedy_deploy(t, inst.network, options,
                                                             &oracle);
        const double after_secs = seconds_since(after_start);

        if (after.anchor != before.anchor) {
            std::cerr << "MISMATCH on " << inst.name << ": anchors differ\n";
            std::exit(1);
        }
        const double speedup = before_secs / after_secs;
        largest_speedup = speedup;  // instances are ordered smallest to largest
        records.push_back({inst.name + "_mats", static_cast<double>(t.node_count()),
                           "mats"});
        records.push_back({inst.name + "_switches",
                           static_cast<double>(inst.network.switch_count()), "switches"});
        records.push_back({inst.name + "_seed_seconds", before_secs, "s"});
        records.push_back({inst.name + "_indexed_seconds", after_secs, "s"});
        records.push_back({inst.name + "_speedup", speedup, "x"});
        std::cout << inst.name << ": " << t.node_count() << " MATs on "
                  << inst.network.switch_count() << " switches — seed " << before_secs
                  << " s, indexed+oracle " << after_secs << " s (" << speedup
                  << "x)\n";
    }
    records.push_back({"largest_instance_speedup", largest_speedup, "x"});

    bench::write_bench_json(args.json_path, "greedy_pipeline", records);
    std::cout << "wrote " << args.json_path << "\n";
    if (!bench::write_obs_exports(sink, args.trace_out, args.metrics_out)) {
        std::exit(1);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const bench::ToolArgs args =
        bench::parse_tool_args(argc, argv, "BENCH_greedy.json");
    int pass_argc = static_cast<int>(args.passthrough.size());
    std::vector<char*> passthrough = args.passthrough;
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (!args.sweep_only) benchmark::RunSpecifiedBenchmarks();
    run_sweeps(args);
    return 0;
}
