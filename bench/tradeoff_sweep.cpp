// ε-constraint tradeoff curves (§V-B): per-packet byte overhead and latency
// as a function of the switch budget ε₂ and the latency budget ε₁, for a
// 20-program workload on a Table III WAN. This is the curve an administrator
// consults before submitting bounds to Hermes.
#include <iostream>

#include "core/hermes.h"
#include "core/tradeoff.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    const tdg::Tdg merged = core::analyze(prog::paper_workload(20, 0xbeef));
    const net::Network wan = net::table3_topology(5);
    std::cout << "Workload: " << merged.node_count() << " MATs on topology 5 ("
              << wan.programmable_switches().size() << " programmable switches)\n\n";

    util::Table by_switches({"eps2 (switches)", "feasible", "overhead(B)",
                             "latency(ms)", "occupied"});
    const auto switch_sweep = core::sweep_switch_budget(merged, wan, 1, 12);
    for (const core::TradeoffPoint& p : switch_sweep) {
        by_switches.add_row(
            {util::Table::num(p.epsilon2), p.feasible ? "yes" : "no",
             p.feasible ? util::Table::num(p.metrics.max_pair_metadata_bytes) : "-",
             p.feasible ? util::Table::num(p.metrics.route_latency_us / 1e3, 2) : "-",
             p.feasible ? util::Table::num(p.metrics.occupied_switches) : "-"});
    }
    by_switches.print(std::cout, "Overhead vs switch budget (eps1 unbounded)");
    if (const auto knee = core::knee_point(switch_sweep)) {
        std::cout << "Knee: eps2 = " << knee->epsilon2 << " reaches "
                  << knee->metrics.max_pair_metadata_bytes << " B\n";
    }

    std::cout << '\n';
    util::Table by_latency({"eps1 (ms)", "feasible", "overhead(B)", "latency(ms)"});
    for (const core::TradeoffPoint& p :
         core::sweep_latency_budget(merged, wan, 0.0, 120'000.0, 7)) {
        by_latency.add_row(
            {util::Table::num(p.epsilon1 / 1e3, 1), p.feasible ? "yes" : "no",
             p.feasible ? util::Table::num(p.metrics.max_pair_metadata_bytes) : "-",
             p.feasible ? util::Table::num(p.metrics.route_latency_us / 1e3, 2) : "-"});
    }
    by_latency.print(std::cout, "Overhead vs latency budget (eps2 unbounded)");
    return 0;
}
