// Table III: the ten WAN topologies used by the simulation experiments,
// regenerated with the paper's property settings (50% programmable Tofino
// switches, t_s = 1 us, t_l ~ U(1ms, 10ms)).
#include <iostream>

#include "net/topozoo.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    util::Table table({"topology id", "# of nodes", "# of edges", "programmable",
                       "connected", "capacity(units)"});
    for (int id = 1; id <= net::kTopologyCount; ++id) {
        const net::Network n = net::table3_topology(id);
        table.add_row({util::Table::num(std::int64_t{id}),
                       util::Table::num(static_cast<std::int64_t>(n.switch_count())),
                       util::Table::num(static_cast<std::int64_t>(n.link_count())),
                       util::Table::num(
                           static_cast<std::int64_t>(n.programmable_switches().size())),
                       n.is_connected() ? "yes" : "NO",
                       util::Table::num(n.total_programmable_capacity(), 0)});
    }
    table.print(std::cout, "Table III: topologies used by the experiments");
    std::cout << "\nNote: the paper's Table III is partially illegible in the source\n"
                 "text; readable cells are reproduced verbatim, the rest are filled\n"
                 "in-range (see DESIGN.md).\n";
    return 0;
}
