// Exp#1 / Figure 5: testbed experiments. Deploys 2..10 real programs on the
// three-switch linear Tofino testbed with every solution and reports the
// per-packet byte overhead (Fig 5a), execution time (Fig 5b), and the
// FCT/goodput of a 1024-byte-packet flow over each deployment (Fig 5c-d).
#include <iostream>

#include "bench_util.h"
#include "prog/library.h"
#include "sim/testbed.h"

int main() {
    using namespace hermes;

    sim::TestbedConfig testbed;
    testbed.switch_count = 3;
    testbed.stages = 8;  // scaled-down Tofino profile (DESIGN.md): keeps the
                         // paper's resource-pressure regime with our compact
                         // program models while leaving depth headroom for
                         // the shared-field conflict chains
    const net::Network n = sim::make_testbed(testbed);

    bench::RunConfig config;
    config.baseline.milp.time_limit_seconds = 10.0;
    config.baseline.candidate_limit = 3;
    config.baseline.segment_level = false;  // testbed scale: exact MAT-level models
    config.hermes.milp.time_limit_seconds = 15.0;

    sim::FlowSpec flow;
    flow.payload_bytes_total = static_cast<std::int64_t>(1024 - 40) * 20'000;
    flow.mtu_bytes = 1024;  // fixed 1024B packets as in §VI's e2e measurements

    // The paper's testbed programs are switch.p4 versions, each consuming a
    // sizable share of one switch; our compact models are scaled up to the
    // same resource-pressure regime (DESIGN.md substitution table).
    constexpr double kResourceScale = 1.5;

    for (int count = 2; count <= 10; count += 2) {
        std::vector<prog::Program> programs;
        for (const prog::Program& p : prog::real_programs()) {
            if (static_cast<int>(programs.size()) >= count) break;
            programs.push_back(p.with_scaled_resources(kResourceScale));
        }

        std::vector<bench::SolutionRow> rows = bench::run_all_solutions(programs, n, config);
        bench::simulate_rows(rows, flow);
        bench::print_rows(std::cout,
                          "Exp#1 (Fig 5): " + std::to_string(count) +
                              " real programs on the 3-switch testbed",
                          rows, /*with_flows=*/true);
    }
    std::cout << "Expected shape (paper): Hermes == Optimal at testbed scale, with\n"
                 "overhead far below the other solutions (up to 156B there); FFL/FFLS\n"
                 "fastest but overhead-heaviest; ILP frameworks slowest.\n";
    return 0;
}
