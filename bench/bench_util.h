// Shared machinery for the experiment-reproduction binaries: runs every
// solution (the eight comparison frameworks plus Hermes greedy and Hermes
// Optimal) through the same pipeline and reports the paper's metrics.
#pragma once

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/hermes.h"
#include "core/verifier.h"
#include "obs/obs.h"
#include "sim/flowsim.h"
#include "util/table.h"

namespace hermes::bench {

struct SolutionRow {
    std::string name;
    core::DeploymentMetrics metrics;
    double solve_seconds = 0.0;
    std::string status;
    bool verified = false;
    std::vector<sim::HopSpec> hops;  // end-to-end hop sequence of the deployment
    // Filled by simulate_rows():
    double fct_us = 0.0;
    double goodput_gbps = 0.0;
};

struct RunConfig {
    baselines::BaselineOptions baseline;  // ILP limits, candidate caps
    core::HermesOptions hermes;           // Optimal configuration
    bool include_optimal = true;
    bool include_baselines = true;
};

// Runs Hermes greedy, Hermes Optimal, and all comparison frameworks on the
// same workload/network; every deployment is passed through the verifier.
// A solution that fails to deploy (infeasible instance for its strategy) is
// reported with status "failed(...)" and zeroed metrics.
[[nodiscard]] std::vector<SolutionRow> run_all_solutions(
    const std::vector<prog::Program>& programs, const net::Network& net,
    const RunConfig& config);

// Simulates one flow per row over its deployment's hop sequence using the
// row's in-flight overhead. fct_us is the full message completion time
// (packetization + store-and-forward + propagation); goodput_gbps is the
// steady-state payload share of the 100 Gbps line rate, which isolates the
// header-overhead effect from path-length effects.
void simulate_rows(std::vector<SolutionRow>& rows, const sim::FlowSpec& base_spec);

// Table of rows with the standard columns.
void print_rows(std::ostream& os, const std::string& title,
                const std::vector<SolutionRow>& rows, bool with_flows = false);

// One scalar of a perf-trajectory file (BENCH_*.json).
struct BenchRecord {
    std::string name;
    double value = 0.0;
    std::string unit;
};

// Writes {"suite": ..., "records": [{"name", "value", "unit"}, ...]} so perf
// numbers checked in at each PR stay machine-comparable across the history.
void write_bench_json(const std::string& path, const std::string& suite,
                      const std::vector<BenchRecord>& records);

// Command-line contract shared by the custom-main micro tools (micro_solver,
// micro_greedy), matching hermes_cli's spellings: every value flag accepts
// both "--flag value" and "--flag=value"; --benchmark_* flags pass through
// to google-benchmark untouched; anything else prints to stderr and exits 2.
// threads/seed/time-limit are std::optional so each tool keeps its own
// defaults when the flag is absent.
struct ToolArgs {
    bool sweep_only = false;
    bool smoke = false;
    std::string json_path;                     // --json, seeded per tool
    std::optional<int> threads;                // --threads
    std::optional<std::uint64_t> seed;         // --seed
    std::optional<double> time_limit_seconds;  // --time-limit
    std::string trace_out;                     // --trace-out, empty = off
    std::string metrics_out;                   // --metrics-out, empty = off
    std::vector<char*> passthrough;            // argv[0] + --benchmark_* flags
};

[[nodiscard]] ToolArgs parse_tool_args(int argc, char** argv,
                                       const std::string& default_json);

// Writes the exports a ToolArgs asked for (no-ops on a null sink or empty
// paths); false, with a message on stderr, when a file cannot be written.
[[nodiscard]] bool write_obs_exports(const obs::Sink* sink,
                                     const std::string& trace_out,
                                     const std::string& metrics_out);

}  // namespace hermes::bench
