// Ablation benchmarks for the design choices called out in DESIGN.md:
//  - greedy cut strategy (Algorithm 2's min-metadata cut vs resource
//    first-fit) — runtime plus resulting overhead as a counter;
//  - TDG merging on/off — resource and node-count effect;
//  - Yen-K path-set size — formulation build cost.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/dp_split.h"
#include "core/formulation.h"
#include "core/greedy.h"
#include "core/hermes.h"
#include "core/objective.h"
#include "net/topozoo.h"
#include "prog/library.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"
#include "tdg/analyzer.h"
#include "tdg/merge.h"

namespace {

using namespace hermes;

void BM_CutStrategy(benchmark::State& state) {
    const bool min_cut = state.range(0) == 0;
    const tdg::Tdg t = core::analyze(prog::paper_workload(20, 11));
    const net::Network n = net::table3_topology(4);
    std::vector<tdg::NodeId> all(t.node_count());
    std::iota(all.begin(), all.end(), tdg::NodeId{0});
    std::int64_t overhead = 0;
    for (auto _ : state) {
        auto segments = min_cut ? core::split_tdg(t, all, 12, 1.0)
                                : core::split_tdg_first_fit(t, all, 12, 1.0);
        const core::GreedyResult r =
            core::deploy_segments_on_chain(t, n, std::move(segments), {});
        overhead = core::max_pair_metadata(t, r.deployment);
        benchmark::DoNotOptimize(overhead);
    }
    state.counters["overhead_bytes"] = static_cast<double>(overhead);
    state.SetLabel(min_cut ? "min-metadata-cut" : "resource-first-fit");
}
BENCHMARK(BM_CutStrategy)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MergingEffect(benchmark::State& state) {
    const bool merge_on = state.range(0) == 1;
    const auto programs = prog::sketch_programs();
    std::size_t nodes = 0;
    double resources = 0.0;
    for (auto _ : state) {
        std::vector<tdg::Tdg> tdgs;
        for (const prog::Program& p : programs) tdgs.push_back(p.to_tdg());
        tdg::Tdg merged = [&] {
            if (merge_on) return tdg::merge_all(std::move(tdgs));
            tdg::Tdg u;
            for (const tdg::Tdg& t : tdgs) u = tdg::graph_union(u, t);
            return u;
        }();
        tdg::analyze(merged);
        nodes = merged.node_count();
        resources = merged.total_resource_units();
        benchmark::DoNotOptimize(nodes);
    }
    state.counters["nodes"] = static_cast<double>(nodes);
    state.counters["resource_units"] = resources;
    state.SetLabel(merge_on ? "merging-on" : "merging-off");
}
BENCHMARK(BM_MergingEffect)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DpVsGreedySplit(benchmark::State& state) {
    // Exact DP segmentation vs Algorithm 2's recursive min-cut: runtime and
    // the resulting max in-flight bytes (counters).
    const bool use_dp = state.range(0) == 1;
    const tdg::Tdg t = core::analyze(prog::paper_workload(15, 21));
    std::vector<tdg::NodeId> all(t.node_count());
    std::iota(all.begin(), all.end(), tdg::NodeId{0});
    const auto cuts = core::boundary_cuts(t);
    std::int64_t max_cut = 0;
    for (auto _ : state) {
        max_cut = 0;
        if (use_dp) {
            const core::DpSplitResult r = core::dp_split(t, 12, 1.0);
            max_cut = r.max_cut_bytes;
        } else {
            const auto segments = core::split_tdg(t, all, 12, 1.0);
            std::size_t position = 0;
            for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
                position += segments[i].size();
                max_cut = std::max(max_cut, cuts[position]);
            }
        }
        benchmark::DoNotOptimize(max_cut);
    }
    state.counters["max_cut_bytes"] = static_cast<double>(max_cut);
    state.SetLabel(use_dp ? "dp-optimal" : "recursive-greedy");
}
BENCHMARK(BM_DpVsGreedySplit)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PathSetSize(benchmark::State& state) {
    const auto k = static_cast<std::size_t>(state.range(0));
    const tdg::Tdg t = core::analyze(prog::paper_workload(4, 2));
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    std::size_t model_vars = 0;
    for (auto _ : state) {
        core::FormulationOptions options;
        options.k_paths = k;
        const core::P1Formulation f(t, n, options);
        model_vars = f.model().variable_count();
        benchmark::DoNotOptimize(model_vars);
    }
    state.counters["model_vars"] = static_cast<double>(model_vars);
}
BENCHMARK(BM_PathSetSize)->Arg(1)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
