// Table I: common metadata in data plane programs, as modeled by the field
// catalog, plus where the program library actually uses each field.
#include <iostream>

#include "prog/library.h"
#include "tdg/field.h"
#include "util/table.h"

int main() {
    using namespace hermes;
    namespace cm = tdg::common_metadata;

    const tdg::Field fields[] = {cm::switch_identifier(), cm::queue_lengths(),
                                 cm::timestamps(), cm::counter_index()};
    const char* usages[] = {"path tracing, path conformance",
                            "congestion control",
                            "troubleshooting, anomaly detection",
                            "hash tables, sketches"};

    util::Table table({"metadata", "size per switch", "used by library programs"});
    for (std::size_t i = 0; i < std::size(fields); ++i) {
        // Count the library programs whose MATs write this field.
        int users = 0;
        for (const std::string& name : prog::program_names()) {
            const prog::Program p = prog::make_program(name);
            bool writes = false;
            for (const tdg::Mat& m : p.mats()) writes = writes || m.modifies_field(fields[i].name);
            users += writes ? 1 : 0;
        }
        table.add_row({fields[i].name,
                       util::Table::num(std::int64_t{fields[i].size_bytes}) + " bytes",
                       std::string(usages[i]) + " (" + std::to_string(users) +
                           "/10 programs)"});
    }
    table.print(std::cout, "Table I: common metadata in data plane programs");
    return 0;
}
