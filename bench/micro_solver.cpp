// Microbenchmarks for the MILP substrate: simplex pivoting, branch and
// bound, and the per-program stage-packing model.
#include <benchmark/benchmark.h>

#include "baselines/common.h"
#include "milp/solver.h"
#include "util/rng.h"

namespace {

using namespace hermes;

// Random dense LP: maximize c'x subject to Ax <= b.
milp::Model random_lp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    milp::Model m;
    std::vector<milp::VarId> xs;
    for (int i = 0; i < vars; ++i) xs.push_back(m.add_continuous(0.0, 10.0));
    for (int r = 0; r < rows; ++r) {
        milp::LinExpr e;
        for (int i = 0; i < vars; ++i) {
            e += milp::LinExpr::term(xs[static_cast<std::size_t>(i)],
                                     rng.uniform_real(0.1, 2.0));
        }
        m.add_constraint(std::move(e), milp::Sense::kLe, rng.uniform_real(5.0, 50.0));
    }
    milp::LinExpr obj;
    for (int i = 0; i < vars; ++i) {
        obj += milp::LinExpr::term(xs[static_cast<std::size_t>(i)],
                                   rng.uniform_real(0.5, 3.0));
    }
    m.maximize(obj);
    return m;
}

void BM_SimplexDense(benchmark::State& state) {
    const auto n = static_cast<int>(state.range(0));
    const milp::Model m = random_lp(n, n, 42);
    for (auto _ : state) {
        const milp::LpResult r = milp::solve_lp(m);
        benchmark::DoNotOptimize(r.objective);
    }
    state.counters["vars"] = n;
}
BENCHMARK(BM_SimplexDense)->Arg(10)->Arg(40)->Arg(80)->Arg(160);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
    const auto items = static_cast<int>(state.range(0));
    util::SplitMix64 rng(7);
    milp::Model m;
    milp::LinExpr weight, value;
    for (int i = 0; i < items; ++i) {
        const milp::VarId x = m.add_binary();
        weight += milp::LinExpr::term(x, static_cast<double>(rng.uniform_int(5, 40)));
        value += milp::LinExpr::term(x, static_cast<double>(rng.uniform_int(1, 100)));
    }
    m.add_constraint(weight, milp::Sense::kLe, 8.0 * items);
    m.maximize(value);
    std::int64_t nodes = 0;
    for (auto _ : state) {
        const milp::MilpResult r = milp::solve_milp(m);
        nodes = r.nodes;
        benchmark::DoNotOptimize(r.objective);
    }
    state.counters["bb_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(8)->Arg(14)->Arg(20);

void BM_MilpPackProgram(benchmark::State& state) {
    // Stage packing of a chain program into a 12-stage switch.
    const auto mats = static_cast<std::size_t>(state.range(0));
    tdg::Tdg t;
    std::vector<tdg::NodeId> nodes;
    for (std::size_t i = 0; i < mats; ++i) {
        nodes.push_back(t.add_node(
            tdg::Mat("m" + std::to_string(i), {tdg::header_field("h", 2)},
                     {tdg::Action{"a", {tdg::metadata_field("x" + std::to_string(i), 4)}}},
                     16, 0.3)));
        if (i > 0) t.add_edge(i - 1, i, tdg::DepType::kMatch);
    }
    milp::MilpOptions options;
    options.time_limit_seconds = 10.0;
    const std::vector<double> remaining(12, 1.0);
    for (auto _ : state) {
        const auto stages = baselines::milp_pack(t, nodes, remaining, options);
        benchmark::DoNotOptimize(stages);
    }
}
BENCHMARK(BM_MilpPackProgram)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
