// Microbenchmarks for the MILP substrate: simplex pivoting, branch and
// bound, the per-program stage-packing model, plus thread-count,
// warm-vs-cold, and revised-vs-dense-kernel sweeps. Has a custom main: after
// the google-benchmark suites it writes a BENCH_milp.json perf-trajectory
// summary (pass --sweep-only to skip the google-benchmark portion, --smoke
// for a short-capped CI check that exits nonzero on any solver error).
// Accepts the common tool flags --threads/--seed/--time-limit and the obs
// exports --trace-out/--metrics-out (see bench_util.h); unknown flags other
// than --benchmark_* exit 2.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <optional>
#include <thread>

#include "baselines/common.h"
#include "bench_util.h"
#include "core/formulation.h"
#include "core/hermes.h"
#include "core/objective.h"
#include "milp/solver.h"
#include "net/builders.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"
#include "util/rng.h"

namespace {

using namespace hermes;

// Random dense LP: maximize c'x subject to Ax <= b.
milp::Model random_lp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    milp::Model m;
    std::vector<milp::VarId> xs;
    for (int i = 0; i < vars; ++i) xs.push_back(m.add_continuous(0.0, 10.0));
    for (int r = 0; r < rows; ++r) {
        milp::LinExpr e;
        for (int i = 0; i < vars; ++i) {
            e += milp::LinExpr::term(xs[static_cast<std::size_t>(i)],
                                     rng.uniform_real(0.1, 2.0));
        }
        m.add_constraint(std::move(e), milp::Sense::kLe, rng.uniform_real(5.0, 50.0));
    }
    milp::LinExpr obj;
    for (int i = 0; i < vars; ++i) {
        obj += milp::LinExpr::term(xs[static_cast<std::size_t>(i)],
                                   rng.uniform_real(0.5, 3.0));
    }
    m.maximize(obj);
    return m;
}

void BM_SimplexDense(benchmark::State& state) {
    const auto n = static_cast<int>(state.range(0));
    const milp::Model m = random_lp(n, n, 42);
    for (auto _ : state) {
        const milp::LpResult r = milp::solve_lp(m);
        benchmark::DoNotOptimize(r.objective);
    }
    state.counters["vars"] = n;
}
BENCHMARK(BM_SimplexDense)->Arg(10)->Arg(40)->Arg(80)->Arg(160);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
    const auto items = static_cast<int>(state.range(0));
    util::SplitMix64 rng(7);
    milp::Model m;
    milp::LinExpr weight, value;
    for (int i = 0; i < items; ++i) {
        const milp::VarId x = m.add_binary();
        weight += milp::LinExpr::term(x, static_cast<double>(rng.uniform_int(5, 40)));
        value += milp::LinExpr::term(x, static_cast<double>(rng.uniform_int(1, 100)));
    }
    m.add_constraint(weight, milp::Sense::kLe, 8.0 * items);
    m.maximize(value);
    std::int64_t nodes = 0;
    for (auto _ : state) {
        const milp::MilpResult r = milp::solve_milp(m);
        nodes = r.nodes;
        benchmark::DoNotOptimize(r.objective);
    }
    state.counters["bb_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(8)->Arg(14)->Arg(20);

void BM_MilpPackProgram(benchmark::State& state) {
    // Stage packing of a chain program into a 12-stage switch.
    const auto mats = static_cast<std::size_t>(state.range(0));
    tdg::Tdg t;
    std::vector<tdg::NodeId> nodes;
    for (std::size_t i = 0; i < mats; ++i) {
        nodes.push_back(t.add_node(
            tdg::Mat("m" + std::to_string(i), {tdg::header_field("h", 2)},
                     {tdg::Action{"a", {tdg::metadata_field("x" + std::to_string(i), 4)}}},
                     16, 0.3)));
        if (i > 0) t.add_edge(i - 1, i, tdg::DepType::kMatch);
    }
    milp::MilpOptions options;
    options.time_limit_seconds = 10.0;
    const std::vector<double> remaining(12, 1.0);
    for (auto _ : state) {
        const auto stages = baselines::milp_pack(t, nodes, remaining, options);
        benchmark::DoNotOptimize(stages);
    }
}
BENCHMARK(BM_MilpPackProgram)->Arg(4)->Arg(8)->Arg(12);

// Hard random MILP reused by the sweep benchmarks below: enough binaries to
// force a real branch-and-bound tree.
milp::Model sweep_milp(std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    milp::Model m;
    std::vector<milp::VarId> xs;
    for (int i = 0; i < 26; ++i) xs.push_back(m.add_binary());
    for (int r = 0; r < 13; ++r) {
        milp::LinExpr e;
        for (const milp::VarId x : xs) {
            e += milp::LinExpr::term(x, rng.uniform_real(0.1, 2.0));
        }
        m.add_constraint(std::move(e), milp::Sense::kLe, rng.uniform_real(4.0, 12.0));
    }
    milp::LinExpr obj;
    for (const milp::VarId x : xs) {
        obj += milp::LinExpr::term(x, rng.uniform_real(0.5, 3.0));
    }
    m.maximize(obj);
    return m;
}

void BM_MilpThreadSweep(benchmark::State& state) {
    const auto threads = static_cast<int>(state.range(0));
    const milp::Model m = sweep_milp(0xabc);
    milp::MilpOptions options;
    options.threads = threads;
    for (auto _ : state) {
        const milp::MilpResult r = milp::solve_milp(m, options);
        benchmark::DoNotOptimize(r.objective);
    }
    state.counters["threads"] = threads;
}
BENCHMARK(BM_MilpThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MilpWarmVsCold(benchmark::State& state) {
    const bool warm = state.range(0) != 0;
    const milp::Model m = sweep_milp(0xabc);
    milp::MilpOptions options;
    options.threads = 1;
    options.warm_lp_basis = warm;
    for (auto _ : state) {
        const milp::MilpResult r = milp::solve_milp(m, options);
        benchmark::DoNotOptimize(r.objective);
    }
    state.SetLabel(warm ? "warm" : "cold");
}
BENCHMARK(BM_MilpWarmVsCold)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

// Seeded P#1 instance on the Tofino-shaped testbed: a chain-with-shortcuts
// TDG whose branch-and-bound tree runs to thousands of nodes — the regime
// where warm-started re-solves pay for their refactorization many times over.
milp::Model sweep_p1(std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    tdg::Tdg t;
    const int mats = static_cast<int>(rng.uniform_int(4, 6));
    for (int i = 0; i < mats; ++i) {
        t.add_node(tdg::Mat(
            "m" + std::to_string(i), {tdg::header_field("h" + std::to_string(i), 2)},
            {tdg::Action{"a", {tdg::metadata_field("x" + std::to_string(i), 4)}}}, 16,
            rng.uniform_real(0.3, 0.6)));
        if (i > 0) {
            t.add_edge(static_cast<tdg::NodeId>(i - 1), static_cast<tdg::NodeId>(i),
                       tdg::DepType::kMatch);
            t.edges().back().metadata_bytes = static_cast<int>(rng.uniform_int(1, 6));
        }
        if (i > 1 && rng.chance(0.4)) {
            t.add_edge(static_cast<tdg::NodeId>(i - 2), static_cast<tdg::NodeId>(i),
                       tdg::DepType::kAction);
            t.edges().back().metadata_bytes = static_cast<int>(rng.uniform_int(1, 4));
        }
    }
    sim::TestbedConfig config;
    config.switch_count = static_cast<std::size_t>(rng.uniform_int(2, 3));
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    core::P1Formulation f(t, n, core::FormulationOptions{});
    return f.model();
}

// Timed sweeps behind BENCH_milp.json: revised-vs-dense LP kernels and
// warm-vs-cold at threads=1, a thread ladder, on (a) a seeded P#1 testbed
// instance solved directly and (b) a seeded fat-tree workload through
// deploy_optimal, the production entry point (segment-level, the
// configuration the exp binaries use at that scale). The machine's
// hardware_concurrency is recorded once under its own name; the thread
// ladder records carry the actual swept thread counts in their names.
void run_sweeps(const std::string& path) {
    std::vector<bench::BenchRecord> records;
    const double hw = static_cast<double>(std::thread::hardware_concurrency());
    records.push_back({"machine_hardware_concurrency", hw, "threads"});

    const milp::Model p1 = sweep_p1(13);
    double revised_secs[2] = {0.0, 0.0};  // [cold, warm]
    for (const bool dense : {false, true}) {
        for (const bool warm : {false, true}) {
            milp::MilpOptions options;
            options.time_limit_seconds = 300.0;
            options.threads = 1;
            options.warm_lp_basis = warm;
            options.use_reference_lp = dense;
            const auto start = std::chrono::steady_clock::now();
            const milp::MilpResult r = milp::solve_milp(p1, options);
            const double secs = seconds_since(start);
            const std::string tag =
                std::string(dense ? "dense_" : "") + (warm ? "warm" : "cold");
            records.push_back({"p1_testbed_" + tag + "_threads1_seconds", secs, "s"});
            records.push_back({"p1_testbed_" + tag + "_nodes",
                               static_cast<double>(r.nodes), "nodes"});
            records.push_back({"p1_testbed_" + tag + "_lp_iterations",
                               static_cast<double>(r.lp_iterations), "pivots"});
            if (!dense) revised_secs[warm ? 1 : 0] = secs;
            std::cout << "P#1 testbed threads=1 " << tag << ": " << secs << " s, "
                      << r.nodes << " nodes, " << r.lp_iterations << " pivots\n";
            if (dense && revised_secs[warm ? 1 : 0] > 0.0) {
                records.push_back({std::string("p1_testbed_dense_over_revised_") +
                                       (warm ? "warm" : "cold"),
                                   secs / revised_secs[warm ? 1 : 0], "x"});
            }
        }
    }
    double threads1_secs = 0.0;
    double best_multi_secs = 1e18;
    for (const int threads : {1, 2, 4, 8}) {
        milp::MilpOptions options;
        options.time_limit_seconds = 300.0;
        options.threads = threads;
        const auto start = std::chrono::steady_clock::now();
        const milp::MilpResult r = milp::solve_milp(p1, options);
        const double secs = seconds_since(start);
        if (threads == 1) threads1_secs = secs;
        else best_multi_secs = std::min(best_multi_secs, secs);
        records.push_back({"p1_testbed_threads" + std::to_string(threads) +
                               "_seconds", secs, "s"});
        std::cout << "P#1 testbed warm threads=" << threads << ": " << secs
                  << " s, objective " << r.objective << "\n";
    }
    // >= 1.0 means adding workers never loses to the single-thread run. On a
    // single-core machine the ladder only measures scheduler noise, so the
    // speedup record is omitted entirely — consumers (the CI jq gates) treat
    // absence as "not applicable", never as a regression.
    if (hw > 1.0) {
        records.push_back(
            {"p1_testbed_thread_speedup", threads1_secs / best_multi_secs, "x"});
    } else {
        std::cout << "single-core machine (hardware_concurrency=" << hw
                  << "): p1_testbed_thread_speedup omitted\n";
    }

    // Seeded fat-tree workload through deploy_optimal (k=4: 20 switches).
    util::SplitMix64 rng(0xfeed);
    net::TopologyConfig tconfig;
    const net::Network n = net::fat_tree_topology(4, tconfig, rng);
    const auto programs = prog::paper_workload(6, 0xfeed);
    const tdg::Tdg t = core::analyze(programs);
    for (const bool warm : {false, true}) {
        core::HermesOptions options;
        options.segment_level_milp = true;
        options.milp.time_limit_seconds = 60.0;
        options.milp.threads = 1;
        options.milp.warm_lp_basis = warm;
        const auto start = std::chrono::steady_clock::now();
        const core::DeployOutcome out = core::try_deploy_optimal(t, n, options).value();
        const double secs = seconds_since(start);
        const std::string tag = warm ? "warm" : "cold";
        records.push_back({"fat_tree_p1_" + tag + "_threads1_seconds", secs, "s"});
        std::cout << "fat-tree P#1 threads=1 " << tag << ": " << secs << " s ("
                  << out.solver_status << ")\n";
    }
    for (const int threads : {1, 2, 4}) {
        core::HermesOptions options;
        options.segment_level_milp = true;
        options.milp.time_limit_seconds = 60.0;
        options.milp.threads = threads;
        const auto start = std::chrono::steady_clock::now();
        const core::DeployOutcome out = core::try_deploy_optimal(t, n, options).value();
        const double secs = seconds_since(start);
        records.push_back({"fat_tree_p1_threads" + std::to_string(threads) +
                               "_seconds", secs, "s"});
        std::cout << "fat-tree P#1 warm threads=" << threads << ": " << secs
                  << " s (" << out.solver_status << ")\n";
    }

    // All ten Table III WANs, solved at segment level with a candidate cap —
    // the configuration the exp binaries use at WAN scale. Each run gets the
    // paper's 60 s budget and must close the gap to within 1% (the sparse LU
    // kernel closes every row to optimal in a few seconds); the greedy
    // deployment both warm-starts the search and cross-validates its
    // objective (greedy is a feasible upper bound, so milp <= greedy must
    // hold). The workload seed is pinned to one that segments into a 4-unit
    // instance (a few thousand B&B nodes) — one seed lower and the paper
    // workload collapses into a single segment, one program more and it
    // shatters past the 60 s budget.
    for (const int id : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
        const net::Network wan = net::table3_topology(id);
        const auto wan_programs = prog::paper_workload(11, 0x21);
        const tdg::Tdg wt = core::analyze(wan_programs);
        const core::DeployOutcome greedy = core::try_deploy_greedy(wt, wan, {}).value();
        const double greedy_obj =
            static_cast<double>(core::max_pair_metadata(wt, greedy.deployment));

        core::FormulationOptions fopt;
        fopt.segment_level = true;
        fopt.candidate_limit = 8;
        core::P1Formulation f(wt, wan, fopt);
        milp::MilpOptions options;
        options.time_limit_seconds = 60.0;
        options.warm_start = f.encode(greedy.deployment);
        const auto start = std::chrono::steady_clock::now();
        const milp::MilpResult r = milp::solve_milp(f.model(), options);
        const double secs = seconds_since(start);
        const double gap =
            r.has_solution()
                ? (r.objective - r.best_bound) / std::max(1.0, std::abs(r.objective))
                : 1.0;
        const std::string tag = "wan_t" + std::to_string(id);
        records.push_back({tag + "_seconds", secs, "s"});
        records.push_back({tag + "_objective", r.objective, "bytes"});
        records.push_back({tag + "_gap", gap, "frac"});
        records.push_back({tag + "_greedy_objective", greedy_obj, "bytes"});
        records.push_back({tag + "_nodes", static_cast<double>(r.nodes), "nodes"});
        std::cout << "WAN topology " << id << ": " << milp::to_string(r.status)
                  << ", objective " << r.objective << " (greedy " << greedy_obj
                  << "), gap " << gap << ", " << secs << " s\n";
        if (r.has_solution() && r.objective > greedy_obj + 1e-6) {
            std::cout << "WARNING: WAN topology " << id
                      << " MILP objective exceeds the greedy bound\n";
        }
    }

    bench::write_bench_json(path, "milp_engine", records);
    std::cout << "wrote " << path << "\n";
}

// CI smoke run: short-capped solves that must come back clean. Exercises the
// fat-tree workload through deploy_optimal plus a revised-vs-dense agreement
// check on the P#1 testbed instance; returns nonzero on any solver error so
// the bench job fails loudly instead of shipping a broken kernel. With
// --trace-out/--metrics-out the run is recorded through an obs::Sink, so CI
// can assert on the bb.* / lp.* counters it produces.
int run_smoke(const bench::ToolArgs& args) {
    int failures = 0;

    std::optional<obs::Sink> sink_storage;
    obs::Sink* sink = nullptr;
    if (!args.trace_out.empty() || !args.metrics_out.empty()) {
        sink = &sink_storage.emplace();
        sink->name_thread("main");
    }
    const double time_limit = args.time_limit_seconds.value_or(20.0);
    const int threads = args.threads.value_or(1);

    const milp::Model p1 = sweep_p1(args.seed.value_or(13));
    double objective[2] = {0.0, 0.0};
    for (const bool dense : {false, true}) {
        milp::MilpOptions options;
        options.time_limit_seconds = time_limit;
        options.threads = threads;
        options.sink = sink;
        options.use_reference_lp = dense;
        const milp::MilpResult r = milp::solve_milp(p1, options);
        objective[dense ? 1 : 0] = r.objective;
        std::cout << "smoke P#1 " << (dense ? "dense" : "revised") << ": "
                  << milp::to_string(r.status) << ", objective " << r.objective
                  << ", " << r.nodes << " nodes\n";
        if (!r.has_solution()) {
            std::cout << "FAIL: P#1 " << (dense ? "dense" : "revised")
                      << " solve returned " << milp::to_string(r.status) << "\n";
            ++failures;
        }
    }
    if (std::abs(objective[0] - objective[1]) > 1e-5 * (1.0 + std::abs(objective[1]))) {
        std::cout << "FAIL: revised objective " << objective[0]
                  << " != dense objective " << objective[1] << "\n";
        ++failures;
    }

    util::SplitMix64 rng(0xfeed);
    net::TopologyConfig tconfig;
    const net::Network n = net::fat_tree_topology(4, tconfig, rng);
    const auto programs = prog::paper_workload(6, 0xfeed);
    const tdg::Tdg t = core::analyze(programs, sink);
    core::HermesOptions options;
    options.sink = sink;
    options.segment_level_milp = true;
    options.milp.time_limit_seconds = time_limit;
    options.milp.threads = threads;
    const core::DeployOutcome out = core::try_deploy_optimal(t, n, options).value();
    std::cout << "smoke fat-tree: " << out.solver_status << "\n";
    if (out.solver_status != "optimal" && out.solver_status != "feasible") {
        std::cout << "FAIL: fat-tree deploy_optimal returned " << out.solver_status
                  << "\n";
        ++failures;
    }

    if (!bench::write_obs_exports(sink, args.trace_out, args.metrics_out)) ++failures;
    std::cout << (failures == 0 ? "smoke OK\n" : "smoke FAILED\n");
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::ToolArgs args = bench::parse_tool_args(argc, argv, "BENCH_milp.json");
    if (args.smoke) return run_smoke(args);
    int pass_argc = static_cast<int>(args.passthrough.size());
    std::vector<char*> passthrough = args.passthrough;
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (!args.sweep_only) benchmark::RunSpecifiedBenchmarks();
    run_sweeps(args.json_path);
    return 0;
}
