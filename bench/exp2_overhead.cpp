// Exp#2-#4 / Figures 6-8 in one pass: per-packet byte overhead, execution
// time, and end-to-end FCT/goodput at scale. Deploys 50 concurrent programs
// (the 10 real ones + 40 synthetic, §VI-A) on each of the ten Table III WAN
// topologies with every solution. One pass computes all three figures —
// the dedicated exp3/exp4 binaries re-run representative subsets.
#include <iostream>

#include "bench_util.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    bench::RunConfig config;
    config.baseline.milp.time_limit_seconds = 5.0;
    config.baseline.segment_level = true;   // network scale: segment models
    config.baseline.candidate_limit = 0;    // auto: segments + slack
    config.hermes.segment_level_milp = true;
    config.hermes.candidate_limit = 0;      // auto
    config.hermes.milp.time_limit_seconds = 5.0;

    sim::FlowSpec flow;
    flow.mtu_bytes = 1024;  // the paper measures 1024-byte packets (Fig 8)
    flow.payload_bytes_total = 8 << 20;  // 8 MB message per flow

    const std::vector<std::string> headers{"topology", "Hermes", "Optimal", "MS",
                                           "Sonata",   "SPEED",  "MTP",     "FP",
                                           "P4All",    "FFL",    "FFLS"};
    util::Table overhead(headers), exec_time(headers), fct(headers), goodput(headers);

    for (int id = 1; id <= net::kTopologyCount; ++id) {
        // Fresh workload draw per topology: stands in for the paper's
        // 100-run averaging (one deterministic draw per row).
        const auto programs = prog::paper_workload(50, 0xbeef + id);
        const net::Network n = net::table3_topology(id);
        auto rows = bench::run_all_solutions(programs, n, config);
        bench::simulate_rows(rows, flow);

        std::vector<std::string> oh{util::Table::num(std::int64_t{id})};
        std::vector<std::string> tm{util::Table::num(std::int64_t{id})};
        std::vector<std::string> fc{util::Table::num(std::int64_t{id})};
        std::vector<std::string> gp{util::Table::num(std::int64_t{id})};
        for (const auto& row : rows) {
            oh.push_back(util::Table::num(row.metrics.max_pair_metadata_bytes) +
                         (row.verified ? "" : "!"));
            std::string cell = util::Table::num(row.solve_seconds * 1e3, 1);
            if (row.status.find("time-limit") != std::string::npos) cell += "*";
            tm.push_back(std::move(cell));
            const bool fits_mtu = row.goodput_gbps > 0.0;
            fc.push_back(fits_mtu ? util::Table::num(row.fct_us / 1e3, 1) : ">MTU");
            gp.push_back(fits_mtu ? util::Table::num(row.goodput_gbps, 2) : ">MTU");
        }
        // Progress line per topology so partial runs still carry data.
        std::cout << "[topology " << id << "] overhead:";
        for (std::size_t c = 1; c < oh.size(); ++c) std::cout << ' ' << oh[c];
        std::cout << std::endl;

        overhead.add_row(std::move(oh));
        exec_time.add_row(std::move(tm));
        fct.add_row(std::move(fc));
        goodput.add_row(std::move(gp));
    }
    std::cout << '\n';
    overhead.print(std::cout,
                   "Exp#2 (Fig 6): per-packet byte overhead (bytes), 50 programs");
    std::cout << '\n';
    exec_time.print(std::cout,
                    "Exp#3 (Fig 7): execution time (ms; * = budget clipped like the "
                    "paper's 10^7 ms bars)");
    std::cout << '\n';
    fct.print(std::cout, "Exp#4 (Fig 8a): flow completion time (ms), 1024B packets");
    std::cout << '\n';
    goodput.print(std::cout, "Exp#4 (Fig 8b): goodput (Gbps), 1024B packets");
    std::cout << "\nExpected shapes (paper): Hermes cuts overhead by up to 34% vs the\n"
                 "other solutions and stays near Optimal (Fig 6); heuristics run in\n"
                 "ms while ILP frameworks clip their budgets (Fig 7); lower overhead\n"
                 "gives lower FCT / higher goodput; '>MTU' marks deployments whose\n"
                 "metadata alone no longer fits a 1024B packet (Fig 8).\n";
    return 0;
}
