file(REMOVE_RECURSE
  "CMakeFiles/exp3_exectime.dir/exp3_exectime.cpp.o"
  "CMakeFiles/exp3_exectime.dir/exp3_exectime.cpp.o.d"
  "exp3_exectime"
  "exp3_exectime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp3_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
