# Empty dependencies file for exp3_exectime.
# This may be replaced when dependencies are built.
