file(REMOVE_RECURSE
  "CMakeFiles/exp6_resources.dir/exp6_resources.cpp.o"
  "CMakeFiles/exp6_resources.dir/exp6_resources.cpp.o.d"
  "exp6_resources"
  "exp6_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp6_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
