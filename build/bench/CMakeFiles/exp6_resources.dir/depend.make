# Empty dependencies file for exp6_resources.
# This may be replaced when dependencies are built.
