file(REMOVE_RECURSE
  "CMakeFiles/exp2_overhead.dir/exp2_overhead.cpp.o"
  "CMakeFiles/exp2_overhead.dir/exp2_overhead.cpp.o.d"
  "exp2_overhead"
  "exp2_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
