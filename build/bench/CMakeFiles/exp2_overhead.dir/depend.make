# Empty dependencies file for exp2_overhead.
# This may be replaced when dependencies are built.
