# Empty compiler generated dependencies file for exp1_testbed.
# This may be replaced when dependencies are built.
