file(REMOVE_RECURSE
  "CMakeFiles/exp1_testbed.dir/exp1_testbed.cpp.o"
  "CMakeFiles/exp1_testbed.dir/exp1_testbed.cpp.o.d"
  "exp1_testbed"
  "exp1_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
