# Empty compiler generated dependencies file for exp4_endtoend.
# This may be replaced when dependencies are built.
