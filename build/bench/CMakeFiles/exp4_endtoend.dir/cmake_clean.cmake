file(REMOVE_RECURSE
  "CMakeFiles/exp4_endtoend.dir/exp4_endtoend.cpp.o"
  "CMakeFiles/exp4_endtoend.dir/exp4_endtoend.cpp.o.d"
  "exp4_endtoend"
  "exp4_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp4_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
