# Empty compiler generated dependencies file for exp5_scalability.
# This may be replaced when dependencies are built.
