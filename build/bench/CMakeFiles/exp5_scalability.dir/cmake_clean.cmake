file(REMOVE_RECURSE
  "CMakeFiles/exp5_scalability.dir/exp5_scalability.cpp.o"
  "CMakeFiles/exp5_scalability.dir/exp5_scalability.cpp.o.d"
  "exp5_scalability"
  "exp5_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
