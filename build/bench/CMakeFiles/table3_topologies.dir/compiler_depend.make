# Empty compiler generated dependencies file for table3_topologies.
# This may be replaced when dependencies are built.
