file(REMOVE_RECURSE
  "CMakeFiles/table1_metadata.dir/table1_metadata.cpp.o"
  "CMakeFiles/table1_metadata.dir/table1_metadata.cpp.o.d"
  "table1_metadata"
  "table1_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
