# Empty dependencies file for table1_metadata.
# This may be replaced when dependencies are built.
