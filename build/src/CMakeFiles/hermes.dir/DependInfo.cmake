
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cc" "src/CMakeFiles/hermes.dir/baselines/common.cc.o" "gcc" "src/CMakeFiles/hermes.dir/baselines/common.cc.o.d"
  "/root/repo/src/baselines/network_wide.cc" "src/CMakeFiles/hermes.dir/baselines/network_wide.cc.o" "gcc" "src/CMakeFiles/hermes.dir/baselines/network_wide.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/CMakeFiles/hermes.dir/baselines/registry.cc.o" "gcc" "src/CMakeFiles/hermes.dir/baselines/registry.cc.o.d"
  "/root/repo/src/baselines/single_switch.cc" "src/CMakeFiles/hermes.dir/baselines/single_switch.cc.o" "gcc" "src/CMakeFiles/hermes.dir/baselines/single_switch.cc.o.d"
  "/root/repo/src/core/deployment.cc" "src/CMakeFiles/hermes.dir/core/deployment.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/deployment.cc.o.d"
  "/root/repo/src/core/dp_split.cc" "src/CMakeFiles/hermes.dir/core/dp_split.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/dp_split.cc.o.d"
  "/root/repo/src/core/formulation.cc" "src/CMakeFiles/hermes.dir/core/formulation.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/formulation.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/CMakeFiles/hermes.dir/core/greedy.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/greedy.cc.o.d"
  "/root/repo/src/core/hermes.cc" "src/CMakeFiles/hermes.dir/core/hermes.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/hermes.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/hermes.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/objective.cc" "src/CMakeFiles/hermes.dir/core/objective.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/objective.cc.o.d"
  "/root/repo/src/core/tradeoff.cc" "src/CMakeFiles/hermes.dir/core/tradeoff.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/tradeoff.cc.o.d"
  "/root/repo/src/core/verifier.cc" "src/CMakeFiles/hermes.dir/core/verifier.cc.o" "gcc" "src/CMakeFiles/hermes.dir/core/verifier.cc.o.d"
  "/root/repo/src/dataplane/backend.cc" "src/CMakeFiles/hermes.dir/dataplane/backend.cc.o" "gcc" "src/CMakeFiles/hermes.dir/dataplane/backend.cc.o.d"
  "/root/repo/src/dataplane/interp.cc" "src/CMakeFiles/hermes.dir/dataplane/interp.cc.o" "gcc" "src/CMakeFiles/hermes.dir/dataplane/interp.cc.o.d"
  "/root/repo/src/dataplane/packet.cc" "src/CMakeFiles/hermes.dir/dataplane/packet.cc.o" "gcc" "src/CMakeFiles/hermes.dir/dataplane/packet.cc.o.d"
  "/root/repo/src/milp/expr.cc" "src/CMakeFiles/hermes.dir/milp/expr.cc.o" "gcc" "src/CMakeFiles/hermes.dir/milp/expr.cc.o.d"
  "/root/repo/src/milp/lin.cc" "src/CMakeFiles/hermes.dir/milp/lin.cc.o" "gcc" "src/CMakeFiles/hermes.dir/milp/lin.cc.o.d"
  "/root/repo/src/milp/model.cc" "src/CMakeFiles/hermes.dir/milp/model.cc.o" "gcc" "src/CMakeFiles/hermes.dir/milp/model.cc.o.d"
  "/root/repo/src/milp/simplex.cc" "src/CMakeFiles/hermes.dir/milp/simplex.cc.o" "gcc" "src/CMakeFiles/hermes.dir/milp/simplex.cc.o.d"
  "/root/repo/src/milp/solver.cc" "src/CMakeFiles/hermes.dir/milp/solver.cc.o" "gcc" "src/CMakeFiles/hermes.dir/milp/solver.cc.o.d"
  "/root/repo/src/net/builders.cc" "src/CMakeFiles/hermes.dir/net/builders.cc.o" "gcc" "src/CMakeFiles/hermes.dir/net/builders.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/hermes.dir/net/network.cc.o" "gcc" "src/CMakeFiles/hermes.dir/net/network.cc.o.d"
  "/root/repo/src/net/paths.cc" "src/CMakeFiles/hermes.dir/net/paths.cc.o" "gcc" "src/CMakeFiles/hermes.dir/net/paths.cc.o.d"
  "/root/repo/src/net/topozoo.cc" "src/CMakeFiles/hermes.dir/net/topozoo.cc.o" "gcc" "src/CMakeFiles/hermes.dir/net/topozoo.cc.o.d"
  "/root/repo/src/p4/frontend.cc" "src/CMakeFiles/hermes.dir/p4/frontend.cc.o" "gcc" "src/CMakeFiles/hermes.dir/p4/frontend.cc.o.d"
  "/root/repo/src/p4/lexer.cc" "src/CMakeFiles/hermes.dir/p4/lexer.cc.o" "gcc" "src/CMakeFiles/hermes.dir/p4/lexer.cc.o.d"
  "/root/repo/src/prog/library.cc" "src/CMakeFiles/hermes.dir/prog/library.cc.o" "gcc" "src/CMakeFiles/hermes.dir/prog/library.cc.o.d"
  "/root/repo/src/prog/parser.cc" "src/CMakeFiles/hermes.dir/prog/parser.cc.o" "gcc" "src/CMakeFiles/hermes.dir/prog/parser.cc.o.d"
  "/root/repo/src/prog/program.cc" "src/CMakeFiles/hermes.dir/prog/program.cc.o" "gcc" "src/CMakeFiles/hermes.dir/prog/program.cc.o.d"
  "/root/repo/src/prog/synthetic.cc" "src/CMakeFiles/hermes.dir/prog/synthetic.cc.o" "gcc" "src/CMakeFiles/hermes.dir/prog/synthetic.cc.o.d"
  "/root/repo/src/sim/events.cc" "src/CMakeFiles/hermes.dir/sim/events.cc.o" "gcc" "src/CMakeFiles/hermes.dir/sim/events.cc.o.d"
  "/root/repo/src/sim/flowsim.cc" "src/CMakeFiles/hermes.dir/sim/flowsim.cc.o" "gcc" "src/CMakeFiles/hermes.dir/sim/flowsim.cc.o.d"
  "/root/repo/src/sim/testbed.cc" "src/CMakeFiles/hermes.dir/sim/testbed.cc.o" "gcc" "src/CMakeFiles/hermes.dir/sim/testbed.cc.o.d"
  "/root/repo/src/tdg/analyzer.cc" "src/CMakeFiles/hermes.dir/tdg/analyzer.cc.o" "gcc" "src/CMakeFiles/hermes.dir/tdg/analyzer.cc.o.d"
  "/root/repo/src/tdg/deps.cc" "src/CMakeFiles/hermes.dir/tdg/deps.cc.o" "gcc" "src/CMakeFiles/hermes.dir/tdg/deps.cc.o.d"
  "/root/repo/src/tdg/field.cc" "src/CMakeFiles/hermes.dir/tdg/field.cc.o" "gcc" "src/CMakeFiles/hermes.dir/tdg/field.cc.o.d"
  "/root/repo/src/tdg/mat.cc" "src/CMakeFiles/hermes.dir/tdg/mat.cc.o" "gcc" "src/CMakeFiles/hermes.dir/tdg/mat.cc.o.d"
  "/root/repo/src/tdg/merge.cc" "src/CMakeFiles/hermes.dir/tdg/merge.cc.o" "gcc" "src/CMakeFiles/hermes.dir/tdg/merge.cc.o.d"
  "/root/repo/src/tdg/tdg.cc" "src/CMakeFiles/hermes.dir/tdg/tdg.cc.o" "gcc" "src/CMakeFiles/hermes.dir/tdg/tdg.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/hermes.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/hermes.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/hermes.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/hermes.dir/util/stats.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/hermes.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/hermes.dir/util/strings.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/hermes.dir/util/table.cc.o" "gcc" "src/CMakeFiles/hermes.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
