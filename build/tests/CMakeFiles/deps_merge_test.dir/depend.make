# Empty dependencies file for deps_merge_test.
# This may be replaced when dependencies are built.
