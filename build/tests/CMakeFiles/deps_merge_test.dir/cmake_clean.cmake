file(REMOVE_RECURSE
  "CMakeFiles/deps_merge_test.dir/deps_merge_test.cpp.o"
  "CMakeFiles/deps_merge_test.dir/deps_merge_test.cpp.o.d"
  "deps_merge_test"
  "deps_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deps_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
