# Empty dependencies file for hermes_test.
# This may be replaced when dependencies are built.
