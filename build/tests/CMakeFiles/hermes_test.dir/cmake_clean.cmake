file(REMOVE_RECURSE
  "CMakeFiles/hermes_test.dir/hermes_test.cpp.o"
  "CMakeFiles/hermes_test.dir/hermes_test.cpp.o.d"
  "hermes_test"
  "hermes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
