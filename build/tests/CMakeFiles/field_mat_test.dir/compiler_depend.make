# Empty compiler generated dependencies file for field_mat_test.
# This may be replaced when dependencies are built.
