file(REMOVE_RECURSE
  "CMakeFiles/field_mat_test.dir/field_mat_test.cpp.o"
  "CMakeFiles/field_mat_test.dir/field_mat_test.cpp.o.d"
  "field_mat_test"
  "field_mat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_mat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
