# Empty dependencies file for lin_test.
# This may be replaced when dependencies are built.
