file(REMOVE_RECURSE
  "CMakeFiles/lin_test.dir/lin_test.cpp.o"
  "CMakeFiles/lin_test.dir/lin_test.cpp.o.d"
  "lin_test"
  "lin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
