# Empty dependencies file for milp_solver_test.
# This may be replaced when dependencies are built.
