file(REMOVE_RECURSE
  "CMakeFiles/milp_solver_test.dir/milp_solver_test.cpp.o"
  "CMakeFiles/milp_solver_test.dir/milp_solver_test.cpp.o.d"
  "milp_solver_test"
  "milp_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milp_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
