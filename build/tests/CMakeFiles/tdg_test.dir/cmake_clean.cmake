file(REMOVE_RECURSE
  "CMakeFiles/tdg_test.dir/tdg_test.cpp.o"
  "CMakeFiles/tdg_test.dir/tdg_test.cpp.o.d"
  "tdg_test"
  "tdg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
