# Empty compiler generated dependencies file for tdg_test.
# This may be replaced when dependencies are built.
