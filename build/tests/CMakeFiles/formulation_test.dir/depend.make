# Empty dependencies file for formulation_test.
# This may be replaced when dependencies are built.
