# Empty dependencies file for milp_expr_test.
# This may be replaced when dependencies are built.
