file(REMOVE_RECURSE
  "CMakeFiles/milp_expr_test.dir/milp_expr_test.cpp.o"
  "CMakeFiles/milp_expr_test.dir/milp_expr_test.cpp.o.d"
  "milp_expr_test"
  "milp_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milp_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
