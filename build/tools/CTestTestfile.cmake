# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_deploy_smoke "/root/repo/build/tools/hermes_cli" "deploy" "--programs" "real:4" "--topology" "testbed:3:6")
set_tests_properties(cli_deploy_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze_smoke "/root/repo/build/tools/hermes_cli" "analyze" "--programs" "sketches")
set_tests_properties(cli_analyze_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_baseline_smoke "/root/repo/build/tools/hermes_cli" "deploy" "--programs" "real:4" "--topology" "testbed:3:6" "--strategy" "ffl")
set_tests_properties(cli_baseline_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/hermes_cli")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
