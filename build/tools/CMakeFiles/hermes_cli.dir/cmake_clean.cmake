file(REMOVE_RECURSE
  "CMakeFiles/hermes_cli.dir/hermes_cli.cpp.o"
  "CMakeFiles/hermes_cli.dir/hermes_cli.cpp.o.d"
  "hermes_cli"
  "hermes_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
