# Empty compiler generated dependencies file for hermes_cli.
# This may be replaced when dependencies are built.
