file(REMOVE_RECURSE
  "CMakeFiles/sdm_measurement.dir/sdm_measurement.cpp.o"
  "CMakeFiles/sdm_measurement.dir/sdm_measurement.cpp.o.d"
  "sdm_measurement"
  "sdm_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdm_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
