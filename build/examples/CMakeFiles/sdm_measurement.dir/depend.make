# Empty dependencies file for sdm_measurement.
# This may be replaced when dependencies are built.
