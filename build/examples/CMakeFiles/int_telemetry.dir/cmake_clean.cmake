file(REMOVE_RECURSE
  "CMakeFiles/int_telemetry.dir/int_telemetry.cpp.o"
  "CMakeFiles/int_telemetry.dir/int_telemetry.cpp.o.d"
  "int_telemetry"
  "int_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
