# Empty dependencies file for int_telemetry.
# This may be replaced when dependencies are built.
