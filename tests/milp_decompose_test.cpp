// Benders decomposition tests (milp/decompose.h): the decomposed solve must
// reproduce the monolithic objective on P#1 instances — randomized testbed
// TDGs and a fat-tree instance, under both the A_max and the latency
// objective (the latter exercises the theta epigraph) — and models without
// the path seam must fall back to the monolithic search unchanged.
#include <gtest/gtest.h>

#include <cmath>

#include "core/formulation.h"
#include "milp/decompose.h"
#include "milp/solver.h"
#include "net/builders.h"
#include "sim/testbed.h"
#include "util/rng.h"

namespace hermes::milp {
namespace {

constexpr double kTol = 1e-6;

// Randomized chain-with-shortcuts TDG, the same family the solver benches
// use.
tdg::Tdg random_tdg(std::uint64_t seed, int max_mats) {
    util::SplitMix64 rng(seed);
    tdg::Tdg t;
    const int mats = static_cast<int>(rng.uniform_int(3, max_mats));
    for (int i = 0; i < mats; ++i) {
        t.add_node(tdg::Mat(
            "m" + std::to_string(i), {tdg::header_field("h" + std::to_string(i), 2)},
            {tdg::Action{"a", {tdg::metadata_field("x" + std::to_string(i), 4)}}}, 16,
            rng.uniform_real(0.3, 0.6)));
        if (i > 0) {
            t.add_edge(static_cast<tdg::NodeId>(i - 1), static_cast<tdg::NodeId>(i),
                       tdg::DepType::kMatch);
            t.edges().back().metadata_bytes = static_cast<int>(rng.uniform_int(1, 6));
        }
        if (i > 1 && rng.chance(0.4)) {
            t.add_edge(static_cast<tdg::NodeId>(i - 2), static_cast<tdg::NodeId>(i),
                       tdg::DepType::kAction);
            t.edges().back().metadata_bytes = static_cast<int>(rng.uniform_int(1, 4));
        }
    }
    return t;
}

void expect_decompose_matches_monolithic(const Model& m, double time_limit,
                                         const std::string& label) {
    MilpOptions mono;
    mono.time_limit_seconds = time_limit;
    MilpOptions dec = mono;
    dec.decompose = true;
    const MilpResult a = solve_milp(m, mono);
    const MilpResult b = solve_milp(m, dec);
    ASSERT_EQ(a.status, b.status) << label;
    if (!a.has_solution()) return;
    EXPECT_NEAR(a.objective, b.objective, kTol * (1.0 + std::abs(a.objective)))
        << label;
    EXPECT_TRUE(m.is_feasible(b.values, 1e-6)) << label;
    EXPECT_NEAR(m.objective_value(b.values), b.objective,
                kTol * (1.0 + std::abs(b.objective)))
        << label;
}

TEST(Decompose, MatchesMonolithicOnRandomTestbedInstances) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        util::SplitMix64 rng(seed * 17);
        sim::TestbedConfig config;
        config.switch_count = static_cast<std::size_t>(rng.uniform_int(2, 3));
        config.stages = 4;
        const net::Network n = sim::make_testbed(config);
        core::P1Formulation f(random_tdg(seed, 5), n, core::FormulationOptions{});
        expect_decompose_matches_monolithic(f.model(), 30.0,
                                            "testbed seed " + std::to_string(seed));
    }
}

TEST(Decompose, MatchesMonolithicUnderLatencyObjective) {
    // The SPEED objective puts the path variables in the objective, so the
    // master needs the theta epigraph and real optimality cuts.
    for (std::uint64_t seed = 2; seed <= 4; ++seed) {
        sim::TestbedConfig config;
        config.switch_count = 3;
        config.stages = 4;
        const net::Network n = sim::make_testbed(config);
        core::FormulationOptions fopt;
        fopt.objective = core::P1Objective::kMinLatency;
        core::P1Formulation f(random_tdg(seed, 4), n, fopt);
        expect_decompose_matches_monolithic(f.model(), 30.0,
                                            "latency seed " + std::to_string(seed));
    }
}

TEST(Decompose, MatchesMonolithicOnFatTreeInstance) {
    util::SplitMix64 rng(0xfa7);
    net::TopologyConfig tconfig;
    const net::Network n = net::fat_tree_topology(4, tconfig, rng);
    core::FormulationOptions fopt;
    fopt.candidate_limit = 3;
    core::P1Formulation f(random_tdg(7, 4), n, fopt);
    expect_decompose_matches_monolithic(f.model(), 30.0, "fat-tree");
}

TEST(Decompose, MatchesMonolithicWithEpsilon1Budget) {
    // A finite epsilon1 adds the shared budget row — the feasibility-cut
    // side of the loop.
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    core::FormulationOptions fopt;
    fopt.epsilon1 = 2000.0;
    core::P1Formulation f(random_tdg(3, 5), n, fopt);
    expect_decompose_matches_monolithic(f.model(), 30.0, "epsilon1");
}

TEST(Decompose, SeamlessModelFallsBackToMonolithic) {
    // A plain knapsack has no y_* variables: solve_benders must hand the
    // model to the ordinary search and return its exact result.
    util::SplitMix64 rng(4);
    Model m;
    LinExpr weight, value;
    for (int i = 0; i < 12; ++i) {
        const VarId x = m.add_binary();
        weight += LinExpr::term(x, static_cast<double>(rng.uniform_int(5, 40)));
        value += LinExpr::term(x, static_cast<double>(rng.uniform_int(1, 100)));
    }
    m.add_constraint(weight, Sense::kLe, 90.0);
    m.maximize(value);
    MilpOptions options;
    const MilpResult mono = solve_milp(m, options);
    const MilpResult dec = solve_benders(m, options);
    ASSERT_EQ(mono.status, dec.status);
    ASSERT_EQ(mono.status, MilpStatus::kOptimal);
    EXPECT_NEAR(mono.objective, dec.objective, kTol);
}

TEST(Decompose, OptionFlagRoutesThroughSolveMilp) {
    sim::TestbedConfig config;
    config.switch_count = 2;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    core::P1Formulation f(random_tdg(11, 4), n, core::FormulationOptions{});
    MilpOptions options;
    options.time_limit_seconds = 30.0;
    options.decompose = true;
    const MilpResult r = solve_milp(f.model(), options);
    ASSERT_TRUE(r.has_solution());
    EXPECT_TRUE(f.model().is_feasible(r.values, 1e-6));
}

}  // namespace
}  // namespace hermes::milp
