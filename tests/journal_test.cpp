// Write-ahead journal tests (core/journal.h, DESIGN.md §5k): record framing
// and CRC validation, torn-tail truncation, atomic snapshot rotation, the
// program/deployment payload codecs, crash-point accounting, and
// Engine::recover producing a state bit-identical to an uninterrupted run.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/journal.h"
#include "fault/crash.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"
#include "util/crc.h"
#include "util/json.h"

namespace hermes::core {
namespace {

std::string temp_path(const std::string& name) {
    std::string dir = ::testing::TempDir();
    if (!dir.empty() && dir.back() != '/') dir += '/';
    return dir + name;
}

void remove_journal(const std::string& path) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

util::Json payload(const std::string& type, const std::string& note) {
    util::JsonObject o;
    o.emplace_back("type", type);
    o.emplace_back("note", note);
    return util::Json(std::move(o));
}

net::Network testbed() {
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 8;
    return sim::make_testbed(config);
}

// ---- CRC32C ---------------------------------------------------------------

TEST(Crc32c, KnownVectorAndIncrementalAgreement) {
    // RFC 3720 check value for "123456789".
    EXPECT_EQ(util::crc32c("123456789"), 0xE3069283u);
    const std::string data = "the quick brown fox";
    std::uint32_t state = util::crc32c_init();
    state = util::crc32c_update(state, data.data(), 7);
    state = util::crc32c_update(state, data.data() + 7, data.size() - 7);
    EXPECT_EQ(util::crc32c_final(state), util::crc32c(data));
    EXPECT_EQ(util::crc32c(""), 0u);
}

// ---- Durability / framing -------------------------------------------------

TEST(Journal, DurabilityStringRoundTrip) {
    for (const Durability d :
         {Durability::kNone, Durability::kBatch, Durability::kEpoch}) {
        const auto parsed = parse_durability(to_string(d));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, d);
    }
    EXPECT_FALSE(parse_durability("paranoid").has_value());
}

TEST(Journal, AppendScanRoundTripsEscapedAndUtf8Payloads) {
    const std::string path = temp_path("journal_roundtrip.log");
    remove_journal(path);
    std::vector<std::string> notes = {
        "plain",
        "escapes: \"quoted\"\n\ttabbed\\slashed",
        "utf-8: Ωλ→☃ 日本語",
        std::string("embedded\x01control"),
    };
    {
        auto journal = Journal::open(path, {});
        ASSERT_TRUE(journal.ok()) << journal.status().to_string();
        for (const std::string& note : notes) {
            ASSERT_TRUE(journal.value().append(payload("epoch", note)).ok());
        }
    }
    auto scan = Journal::scan(path);
    ASSERT_TRUE(scan.ok()) << scan.status().to_string();
    EXPECT_TRUE(scan.value().found);
    EXPECT_EQ(scan.value().torn_bytes, 0u);
    ASSERT_EQ(scan.value().records.size(), notes.size());
    for (std::size_t i = 0; i < notes.size(); ++i) {
        EXPECT_EQ(scan.value().records[i].get("type").string_value(), "epoch");
        EXPECT_EQ(scan.value().records[i].get("note").string_value(), notes[i]);
        // The envelope is canonical: dumping and re-parsing is bit-stable.
        EXPECT_EQ(scan.value().records[i].dump(),
                  util::parse_json(scan.value().records[i].dump()).value().dump());
    }
    remove_journal(path);
}

TEST(Journal, ScanMissingFileIsFreshStart) {
    const std::string path = temp_path("journal_missing.log");
    remove_journal(path);
    auto scan = Journal::scan(path);
    ASSERT_TRUE(scan.ok());
    EXPECT_FALSE(scan.value().found);
    EXPECT_TRUE(scan.value().records.empty());
}

TEST(Journal, RefusesForeignFile) {
    const std::string path = temp_path("journal_foreign.log");
    {
        std::ofstream out(path, std::ios::trunc);
        out << "definitely not a journal, do not clobber me";
    }
    EXPECT_FALSE(Journal::scan(path).ok());
    EXPECT_FALSE(Journal::open(path, {}).ok());
    // The foreign content must be untouched.
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "definitely not a journal, do not clobber me");
    std::remove(path.c_str());
}

TEST(Journal, CrcCorruptionEndsValidHistory) {
    const std::string path = temp_path("journal_crc.log");
    remove_journal(path);
    {
        auto journal = Journal::open(path, {});
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE(journal.value().append(payload("epoch", "one")).ok());
        ASSERT_TRUE(journal.value().append(payload("epoch", "two")).ok());
    }
    {
        // Flip the last payload byte of the second record.
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(0, std::ios::end);
        const auto size = static_cast<long>(f.tellg());
        f.seekp(size - 1);
        f.put('#');
    }
    auto scan = Journal::scan(path);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan.value().records.size(), 1u);
    EXPECT_EQ(scan.value().records[0].get("note").string_value(), "one");
    EXPECT_GT(scan.value().torn_bytes, 0u);

    // open() truncates the corrupt tail; the log accepts fresh appends.
    {
        auto journal = Journal::open(path, {});
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE(journal.value().append(payload("epoch", "three")).ok());
    }
    scan = Journal::scan(path);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan.value().records.size(), 2u);
    EXPECT_EQ(scan.value().records[1].get("note").string_value(), "three");
    EXPECT_EQ(scan.value().torn_bytes, 0u);
    remove_journal(path);
}

TEST(Journal, TornTailTruncatedOnOpen) {
    const std::string path = temp_path("journal_torn.log");
    remove_journal(path);
    {
        auto journal = Journal::open(path, {});
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE(journal.value().append(payload("epoch", "kept")).ok());
        ASSERT_TRUE(journal.value().append(payload("epoch", "torn")).ok());
    }
    auto full = Journal::scan(path);
    ASSERT_TRUE(full.ok());
    ASSERT_EQ(full.value().records.size(), 2u);
    // Chop the second record mid-payload, as a crash between partial writes
    // would.
    ASSERT_EQ(::truncate(path.c_str(),
                         static_cast<off_t>(full.value().valid_bytes - 3)),
              0);
    auto scan = Journal::scan(path);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan.value().records.size(), 1u);
    EXPECT_GT(scan.value().torn_bytes, 0u);
    {
        auto journal = Journal::open(path, {});
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE(journal.value().append(payload("epoch", "after")).ok());
    }
    scan = Journal::scan(path);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan.value().records.size(), 2u);
    EXPECT_EQ(scan.value().records[0].get("note").string_value(), "kept");
    EXPECT_EQ(scan.value().records[1].get("note").string_value(), "after");
    remove_journal(path);
}

TEST(Journal, RotateReplacesLogWithSnapshotOnly) {
    const std::string path = temp_path("journal_rotate.log");
    remove_journal(path);
    JournalOptions options;
    options.snapshot_interval = 2;
    auto journal = Journal::open(path, options);
    ASSERT_TRUE(journal.ok());
    EXPECT_FALSE(journal.value().should_rotate());
    ASSERT_TRUE(journal.value().append(payload("epoch", "a")).ok());
    ASSERT_TRUE(journal.value().append(payload("epoch", "b")).ok());
    EXPECT_TRUE(journal.value().should_rotate());
    ASSERT_TRUE(journal.value().rotate(payload("snapshot", "state")).ok());
    EXPECT_EQ(journal.value().records_since_rotate(), 0);
    EXPECT_FALSE(journal.value().should_rotate());
    // Appends after the rotate land in the NEW log (the fd was reopened).
    ASSERT_TRUE(journal.value().append(payload("epoch", "c")).ok());
    auto scan = Journal::scan(path);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan.value().records.size(), 2u);
    EXPECT_EQ(scan.value().records[0].get("type").string_value(), "snapshot");
    EXPECT_EQ(scan.value().records[1].get("note").string_value(), "c");
    remove_journal(path);
}

// ---- Payload codecs -------------------------------------------------------

TEST(JournalCodec, ProgramRoundTripsExactly) {
    prog::SyntheticConfig config;
    prog::Program program = prog::synthetic_program(config, 11, 3);
    program.add_gate(std::size_t{0}, std::size_t{2});
    program.add_explicit_edge(std::size_t{1}, std::size_t{3},
                              tdg::DepType::kSuccessor);
    const util::Json encoded = program_to_json(program);
    auto decoded = program_from_json(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
    EXPECT_EQ(decoded.value().name(), program.name());
    EXPECT_EQ(decoded.value().mat_count(), program.mat_count());
    EXPECT_EQ(decoded.value().gates(), program.gates());
    // Re-encoding must be byte-identical — the fingerprint depends on it.
    EXPECT_EQ(program_to_json(decoded.value()).dump(), encoded.dump());
    // And the rebuilt program derives the same TDG.
    EXPECT_EQ(decoded.value().to_tdg().node_count(), program.to_tdg().node_count());
    EXPECT_EQ(decoded.value().to_tdg().edges().size(), program.to_tdg().edges().size());
}

TEST(JournalCodec, ProgramFromJsonRejectsGarbage) {
    EXPECT_FALSE(program_from_json(util::Json("nope")).ok());
    util::JsonObject o;
    o.emplace_back("name", "x");
    EXPECT_FALSE(program_from_json(util::Json(std::move(o))).ok());
}

TEST(JournalCodec, DeploymentRoundTripsExactDoubles) {
    Deployment d;
    d.placements = {{0, 1}, {2, 3}, {1, 0}};
    net::Path p;
    p.switches = {0, 3, 2};
    p.latency_us = 1.0 / 3.0;  // not representable in decimal
    d.routes[{0, 2}] = p;
    const util::Json encoded = deployment_to_json(d);
    auto decoded = deployment_from_json(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
    ASSERT_EQ(decoded.value().placements.size(), 3u);
    EXPECT_EQ(decoded.value().placements[1].sw, 2u);
    EXPECT_EQ(decoded.value().placements[1].stage, 3);
    ASSERT_EQ(decoded.value().routes.size(), 1u);
    const net::Path& back = decoded.value().routes.at({0, 2});
    EXPECT_EQ(back.switches, p.switches);
    // Bit-exact double round-trip (%.17g), not approximate.
    EXPECT_EQ(back.latency_us, p.latency_us);
    EXPECT_EQ(deployment_to_json(decoded.value()).dump(), encoded.dump());
}

// ---- Crash points ---------------------------------------------------------

TEST(CrashPoints, MapListsEverySeam) {
    const std::vector<std::string>& names = fault::crash_point_names();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_NE(std::find(names.begin(), names.end(), "engine.apply.journaled"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "journal.snapshot.renamed"),
              names.end());
}

TEST(CrashPoints, UnarmedPointsCountHits) {
    fault::disarm_crash_points();
    const std::string path = temp_path("journal_hits.log");
    remove_journal(path);
    const std::int64_t before = fault::crash_point_hits("journal.append.pre_sync");
    auto journal = Journal::open(path, {});
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value().append(payload("epoch", "hit")).ok());
    EXPECT_EQ(fault::crash_point_hits("journal.append.pre_sync"), before + 1);
    remove_journal(path);
}

TEST(CrashPoints, ArmedPointKillsProcessAtNthHit) {
    fault::disarm_crash_points();
    const std::string path = temp_path("journal_kill.log");
    remove_journal(path);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        fault::arm_crash_point("journal.append.pre_sync", 2);
        auto journal = Journal::open(path, {});
        if (!journal.ok()) _exit(10);
        if (!journal.value().append(payload("epoch", "one")).ok()) _exit(11);
        (void)journal.value().append(payload("epoch", "two"));  // SIGKILL here
        _exit(12);  // unreachable when the point fires
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    // The first append completed before the kill; the second is at most torn.
    auto scan = Journal::scan(path);
    ASSERT_TRUE(scan.ok());
    ASSERT_GE(scan.value().records.size(), 1u);
    EXPECT_EQ(scan.value().records[0].get("note").string_value(), "one");
    remove_journal(path);
}

// ---- Engine recovery ------------------------------------------------------

TEST(EngineJournal, RecoverMatchesUninterruptedRun) {
    const std::string path = temp_path("engine_recover.log");
    remove_journal(path);
    prog::SyntheticConfig config;

    std::uint32_t fingerprint = 0;
    std::int64_t epoch = 0;
    std::size_t programs = 0;
    {
        Engine engine(testbed());
        auto report = engine.recover(path, {});
        ASSERT_TRUE(report.ok()) << report.status().to_string();
        EXPECT_FALSE(report.value().journal_found);
        ASSERT_TRUE(engine.add_program(prog::synthetic_program(config, 5, 0)).ok());
        ASSERT_TRUE(engine.add_program(prog::synthetic_program(config, 5, 1)).ok());
        fault::FaultEvent down;
        down.kind = fault::FaultKind::kLinkDown;
        down.a = 0;
        down.b = 1;
        // These epochs may come back kInfeasible on the small testbed — that
        // is part of the deterministic run (infeasible epochs journal and
        // replay their failure identically); only kInvalidInput would mean a
        // broken test.
        EXPECT_NE(engine.apply_fault(down).status().code(),
                  util::StatusCode::kInvalidInput);
        EXPECT_NE(engine.retarget_traffic().status().code(),
                  util::StatusCode::kInvalidInput);
        EXPECT_NE(engine.remove_program(engine.program_names().front()).status().code(),
                  util::StatusCode::kInvalidInput);
        fingerprint = engine.fingerprint();
        epoch = engine.epoch();
        programs = engine.program_count();
    }

    obs::Sink sink;
    EngineOptions options;
    options.sink = &sink;
    Engine recovered(testbed(), options);
    JournalOptions journal_options;
    journal_options.sink = &sink;
    auto report = recovered.recover(path, journal_options);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_TRUE(report.value().journal_found);
    EXPECT_EQ(report.value().epoch, epoch);
    EXPECT_EQ(recovered.epoch(), epoch);
    EXPECT_EQ(recovered.fingerprint(), fingerprint);
    EXPECT_EQ(recovered.program_count(), programs);
    // The recovered network carries the journaled fault delta.
    EXPECT_FALSE(recovered.network().link_up(0, 1));
    std::int64_t recoveries = 0;
    for (const auto& c : sink.counters()) {
        if (c.name == "serve.recoveries") recoveries = c.value;
    }
    EXPECT_EQ(recoveries, 1);
    remove_journal(path);
}

TEST(EngineJournal, SnapshotRotationBoundsReplay) {
    const std::string path = temp_path("engine_snapshot.log");
    remove_journal(path);
    prog::SyntheticConfig config;
    JournalOptions journal_options;
    journal_options.snapshot_interval = 2;

    std::uint32_t fingerprint = 0;
    {
        Engine engine(testbed());
        ASSERT_TRUE(engine.recover(path, journal_options).ok());
        ASSERT_TRUE(engine.add_program(prog::synthetic_program(config, 9, 0)).ok());
        ASSERT_TRUE(engine.retarget_traffic().ok());   // epoch 2 -> rotate
        ASSERT_TRUE(engine.retarget_traffic().ok());
        fingerprint = engine.fingerprint();
    }
    Engine recovered(testbed());
    auto report = recovered.recover(path, journal_options);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_GT(report.value().snapshot_epoch, 0);
    EXPECT_LT(report.value().replayed_epochs, 3);
    EXPECT_EQ(recovered.fingerprint(), fingerprint);
    remove_journal(path);
}

TEST(EngineJournal, RecoverRequiresFreshEngine) {
    const std::string path = temp_path("engine_fresh.log");
    remove_journal(path);
    prog::SyntheticConfig config;
    Engine engine(testbed());
    ASSERT_TRUE(engine.add_program(prog::synthetic_program(config, 3, 0)).ok());
    auto report = engine.recover(path, {});
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), util::StatusCode::kInvalidInput);
    remove_journal(path);
}

}  // namespace
}  // namespace hermes::core
