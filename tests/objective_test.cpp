#include <gtest/gtest.h>

#include "core/objective.h"
#include "net/builders.h"

namespace hermes::core {
namespace {

using tdg::DepType;

tdg::Mat mat(const std::string& name) {
    return tdg::Mat(name, {tdg::header_field("h_" + name, 2)},
                    {tdg::Action{"a", {tdg::metadata_field("m_" + name, 4)}}}, 16, 0.2);
}

// a -> b (4B), b -> c (6B), a -> c (2B)
tdg::Tdg small_tdg() {
    tdg::Tdg t;
    t.add_node(mat("a"));
    t.add_node(mat("b"));
    t.add_node(mat("c"));
    t.add_edge(0, 1, DepType::kMatch);
    t.add_edge(1, 2, DepType::kMatch);
    t.add_edge(0, 2, DepType::kMatch);
    t.edges()[0].metadata_bytes = 4;
    t.edges()[1].metadata_bytes = 6;
    t.edges()[2].metadata_bytes = 2;
    return t;
}

net::Network linear3() {
    net::TopologyConfig c;
    c.min_link_latency_us = 5.0;
    c.max_link_latency_us = 5.0;
    util::SplitMix64 rng(1);
    return net::linear_topology(3, c, rng);
}

TEST(Objective, MaxPairMetadataAllSameSwitchIsZero) {
    const tdg::Tdg t = small_tdg();
    Deployment d;
    d.placements = {{0, 0}, {0, 1}, {0, 2}};
    EXPECT_EQ(max_pair_metadata(t, d), 0);
}

TEST(Objective, MaxPairMetadataPicksHeaviestPair) {
    const tdg::Tdg t = small_tdg();
    Deployment d;
    // a on 0; b,c on 1 -> pair (0,1) carries a->b 4 + a->c 2 = 6.
    d.placements = {{0, 0}, {1, 0}, {1, 1}};
    EXPECT_EQ(max_pair_metadata(t, d), 6);
    // a,b on 0; c on 1 -> pair (0,1) carries b->c 6 + a->c 2 = 8.
    d.placements = {{0, 0}, {0, 1}, {1, 0}};
    EXPECT_EQ(max_pair_metadata(t, d), 8);
}

TEST(Objective, MaxPairMetadataThreeWay) {
    const tdg::Tdg t = small_tdg();
    Deployment d;
    d.placements = {{0, 0}, {1, 0}, {2, 0}};
    // pairs: (0,1)=4, (1,2)=6, (0,2)=2 -> 6.
    EXPECT_EQ(max_pair_metadata(t, d), 6);
}

TEST(Objective, TraversalOrderFollowsTopology) {
    const tdg::Tdg t = small_tdg();
    Deployment d;
    d.placements = {{2, 0}, {0, 0}, {1, 0}};  // a on sw2, b on sw0, c on sw1
    EXPECT_EQ(traversal_order(t, d), (std::vector<net::SwitchId>{2, 0, 1}));
}

TEST(Objective, MaxInflightAccumulatesAcrossHops) {
    const tdg::Tdg t = small_tdg();
    const net::Network n = linear3();
    Deployment d;
    d.placements = {{0, 0}, {1, 0}, {2, 0}};
    // hop 0-1 carries a->b (4) and a->c (2) = 6; hop 1-2 carries b->c (6)
    // and a->c (2) = 8.
    EXPECT_EQ(max_inflight_metadata(t, n, d), 8);
}

TEST(Objective, MaxInflightSingleSwitchZero) {
    const tdg::Tdg t = small_tdg();
    const net::Network n = linear3();
    Deployment d;
    d.placements = {{1, 0}, {1, 1}, {1, 2}};
    EXPECT_EQ(max_inflight_metadata(t, n, d), 0);
}

TEST(Objective, RouteLatencyAndOccupiedCount) {
    const tdg::Tdg t = small_tdg();
    const net::Network n = linear3();
    Deployment d;
    d.placements = {{0, 0}, {1, 0}, {2, 0}};
    d.routes[{0, 1}] = *net::shortest_path(n, 0, 1);
    d.routes[{1, 2}] = *net::shortest_path(n, 1, 2);
    // each hop: 1 + 5 + 1 = 7.
    EXPECT_DOUBLE_EQ(total_route_latency(d), 14.0);
    EXPECT_EQ(occupied_switch_count(d), 3);
}

TEST(Objective, EvaluateBundlesEverything) {
    const tdg::Tdg t = small_tdg();
    const net::Network n = linear3();
    Deployment d;
    d.placements = {{0, 0}, {1, 0}, {2, 0}};
    d.routes[{0, 1}] = *net::shortest_path(n, 0, 1);
    d.routes[{1, 2}] = *net::shortest_path(n, 1, 2);
    const DeploymentMetrics m = evaluate(t, n, d);
    EXPECT_EQ(m.max_pair_metadata_bytes, 6);
    EXPECT_EQ(m.max_inflight_metadata_bytes, 8);
    EXPECT_DOUBLE_EQ(m.route_latency_us, 14.0);
    EXPECT_EQ(m.occupied_switches, 3);
    EXPECT_NEAR(m.total_resource_units, 0.6, 1e-9);
}

TEST(Objective, EmptyDeployment) {
    tdg::Tdg t;
    const net::Network n = linear3();
    const Deployment d;
    EXPECT_EQ(max_pair_metadata(t, d), 0);
    EXPECT_EQ(max_inflight_metadata(t, n, d), 0);
    EXPECT_EQ(occupied_switch_count(d), 0);
}

}  // namespace
}  // namespace hermes::core
