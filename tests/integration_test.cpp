// End-to-end integration: programs -> analyzer -> placement (all
// strategies) -> verification -> flow simulation, on testbed and WAN
// topologies. These tests exercise the exact pipeline the benchmark
// binaries run.
#include <gtest/gtest.h>

#include "baselines/common.h"
#include "core/hermes.h"
#include "core/verifier.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"

namespace hermes {
namespace {

TEST(Integration, TestbedPipelineAllStrategies) {
    const auto programs = prog::paper_workload(6, 11);
    sim::TestbedConfig config;
    config.stages = 6;
    const net::Network n = sim::make_testbed(config);

    // Hermes greedy.
    const tdg::Tdg merged = core::analyze(programs);
    const core::DeployOutcome hermes_outcome = core::try_deploy_greedy(merged, n).value();
    ASSERT_TRUE(core::verify(merged, n, hermes_outcome.deployment).ok);

    // Flow simulation on the Hermes deployment.
    sim::FlowSpec spec;
    spec.payload_bytes_total = 1460 * 200;
    spec.overhead_bytes =
        static_cast<int>(hermes_outcome.metrics.max_inflight_metadata_bytes);
    const auto hops = sim::deployment_hops(merged, n, hermes_outcome.deployment);
    ASSERT_FALSE(hops.empty());
    const sim::FlowResult flow = sim::simulate_flow(hops, spec);
    EXPECT_GT(flow.goodput_gbps, 0.0);
    EXPECT_GT(flow.fct_us, 0.0);

    // Baselines: all verified, all simulate.
    baselines::BaselineOptions options;
    options.milp.time_limit_seconds = 3.0;
    options.candidate_limit = 3;
    for (const auto& strategy : baselines::all_strategies()) {
        const baselines::StrategyOutcome outcome = strategy->deploy(programs, n, options);
        ASSERT_TRUE(core::verify(outcome.merged, n, outcome.deployment).ok)
            << strategy->name();
        sim::FlowSpec s2 = spec;
        s2.overhead_bytes = static_cast<int>(
            core::max_inflight_metadata(outcome.merged, n, outcome.deployment));
        const auto h2 = sim::deployment_hops(outcome.merged, n, outcome.deployment);
        const sim::FlowResult f2 = sim::simulate_flow(h2, s2);
        EXPECT_GT(f2.goodput_gbps, 0.0) << strategy->name();
    }
}

TEST(Integration, WanTopologyGreedyDeployment) {
    // Topology 1 of Table III with a 20-program workload.
    const auto programs = prog::paper_workload(20, 3);
    const net::Network n = net::table3_topology(1);
    const tdg::Tdg merged = core::analyze(programs);
    const core::DeployOutcome outcome = core::try_deploy_greedy(merged, n).value();
    const core::VerificationReport report = core::verify(merged, n, outcome.deployment);
    ASSERT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                         : report.violations.front());
    EXPECT_GT(outcome.metrics.occupied_switches, 1);
    // Only programmable switches host MATs.
    for (const core::Placement& p : outcome.deployment.placements) {
        EXPECT_TRUE(n.props(p.sw).programmable);
    }
}

TEST(Integration, GreedyScalesAcrossAllTenTopologies) {
    const auto programs = prog::paper_workload(15, 5);
    const tdg::Tdg merged = core::analyze(programs);
    for (int id = 1; id <= net::kTopologyCount; ++id) {
        const net::Network n = net::table3_topology(id);
        const core::DeployOutcome outcome = core::try_deploy_greedy(merged, n).value();
        EXPECT_TRUE(core::verify(merged, n, outcome.deployment).ok) << "topology " << id;
        EXPECT_LT(outcome.solve_seconds, 30.0) << "topology " << id;
    }
}

TEST(Integration, OverheadTranslatesToWorseFlows) {
    // Deployments with larger in-flight overhead must not get better
    // goodput over the same hop count (the §II-B mechanism).
    sim::FlowSpec base;
    base.payload_bytes_total = 1460 * 500;
    const std::vector<sim::HopSpec> hops(5, sim::HopSpec{0.5, 1.0});
    double last_goodput = 1e9;
    for (const int overhead : {0, 32, 64, 128}) {
        sim::FlowSpec spec = base;
        spec.overhead_bytes = overhead;
        const sim::FlowResult r = sim::simulate_flow(hops, spec);
        EXPECT_LT(r.goodput_gbps, last_goodput);
        last_goodput = r.goodput_gbps;
    }
}

TEST(Integration, OptimalAndGreedyAgreeOnSmallTestbed) {
    const auto programs = prog::paper_workload(3, 9);
    sim::TestbedConfig config;
    config.stages = 3;
    const net::Network n = sim::make_testbed(config);
    const tdg::Tdg merged = core::analyze(programs);
    const core::DeployOutcome greedy = core::try_deploy_greedy(merged, n).value();
    core::HermesOptions options;
    options.milp.time_limit_seconds = 60.0;
    const core::DeployOutcome optimal = core::try_deploy_optimal(merged, n, options).value();
    EXPECT_LE(optimal.metrics.max_pair_metadata_bytes,
              greedy.metrics.max_pair_metadata_bytes);
    EXPECT_TRUE(core::verify(merged, n, optimal.deployment).ok);
}

}  // namespace
}  // namespace hermes
