// Simulator tests: event queue semantics, flow packetization, FCT/goodput
// physics, the §II-B motivation rig, and the sharded multi-flow engine
// (adapter equivalence, thread-count determinism, fast-path agreement,
// arena pools).
#include <gtest/gtest.h>

#include <random>

#include "net/topozoo.h"
#include "sim/arena.h"
#include "sim/engine.h"
#include "sim/events.h"
#include "sim/flowsim.h"
#include "sim/testbed.h"

namespace hermes::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    const double last = q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(last, 3.0);
}

TEST(EventQueue, FifoAmongSimultaneous) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(1.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbacksMaySchedule) {
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] {
        ++fired;
        q.schedule(2.0, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastSchedulingRejected) {
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunStepsLimits) {
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 5; ++i) q.schedule(i, [&] { ++fired; });
    EXPECT_EQ(q.run_steps(2), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 3u);
}

// ---- Flow simulation ---------------------------------------------------------

TEST(FlowSim, EffectivePayloadShrinksWithOverhead) {
    FlowSpec spec;
    spec.mtu_bytes = 1500;
    spec.base_header_bytes = 40;
    spec.overhead_bytes = 0;
    EXPECT_EQ(effective_payload(spec), 1460);
    spec.overhead_bytes = 60;
    EXPECT_EQ(effective_payload(spec), 1400);
    spec.overhead_bytes = 1460;
    EXPECT_THROW((void)effective_payload(spec), std::invalid_argument);
}

TEST(FlowSim, SinglePacketSingleHopLatency) {
    // One 1000B-payload packet over one hop at 100 Gbps:
    // tx = 1040*8/1e11 s = 83.2ns = 0.0832us, plus 0.5us prop + 1us switch.
    FlowSpec spec;
    spec.payload_bytes_total = 1000;
    spec.mtu_bytes = 1500;
    const std::vector<HopSpec> hops{{0.5, 1.0}};
    const FlowResult r = simulate_flow(hops, spec);
    EXPECT_EQ(r.packets, 1);
    EXPECT_NEAR(r.fct_us, 0.0832 + 0.5 + 1.0, 1e-9);
}

TEST(FlowSim, PacketCountFromOverhead) {
    FlowSpec spec;
    spec.payload_bytes_total = 14600;  // 10 full packets at zero overhead
    const FlowResult zero = simulate_flow({{0.5, 1.0}}, spec);
    EXPECT_EQ(zero.packets, 10);
    spec.overhead_bytes = 146;  // payload 1314 -> ceil(14600/1314) = 12
    const FlowResult loaded = simulate_flow({{0.5, 1.0}}, spec);
    EXPECT_EQ(loaded.packets, 12);
    EXPECT_GT(loaded.fct_us, zero.fct_us);
    EXPECT_LT(loaded.goodput_gbps, zero.goodput_gbps);
}

TEST(FlowSim, PipeliningAcrossHops) {
    // N packets over H hops: FCT ~ N*tx + H*(tx + prop + switch) under
    // store-and-forward pipelining; check against closed form.
    FlowSpec spec;
    spec.payload_bytes_total = 1460 * 100;
    const std::vector<HopSpec> hops(5, HopSpec{0.5, 1.0});
    const FlowResult r = simulate_flow(hops, spec);
    const double tx = 1500.0 * 8.0 / 1e5;  // us at 100 Gbps
    const double expected = 99 * tx + 5 * (tx + 1.5);
    EXPECT_NEAR(r.fct_us, expected, 1e-6);
}

TEST(FlowSim, GoodputApproachesLineRateForLargeFlows) {
    FlowSpec spec;
    spec.payload_bytes_total = 1460 * 5000;
    const FlowResult r = simulate_flow({{0.5, 1.0}}, spec);
    // payload/wire ratio at zero overhead = 1460/1500 = 97.3% of 100 Gbps.
    EXPECT_NEAR(r.goodput_gbps, 100.0 * 1460.0 / 1500.0, 1.0);
}

TEST(FlowSim, ZeroPayloadZeroPackets) {
    FlowSpec spec;
    const FlowResult r = simulate_flow({{0.5, 1.0}}, spec);
    EXPECT_EQ(r.packets, 0);
    EXPECT_EQ(r.fct_us, 0.0);
}

TEST(FlowSim, ShortFinalPacket) {
    FlowSpec spec;
    spec.payload_bytes_total = 1500;  // 1460 + 40 remainder
    const FlowResult r = simulate_flow({{0.0, 0.0}}, spec);
    EXPECT_EQ(r.packets, 2);
    // Full 1500B wire packet followed by a 40+40=80B runt, back to back.
    const double expected = (1500.0 + 80.0) * 8.0 / 1e5;
    EXPECT_NEAR(r.fct_us, expected, 1e-9);
}

TEST(FlowSim, BandwidthValidation) {
    SimConfig config;
    config.link_bandwidth_gbps = 0.0;
    FlowSpec spec;
    spec.payload_bytes_total = 100;
    EXPECT_THROW((void)simulate_flow({{0, 0}}, spec, config), std::invalid_argument);
}

// ---- Motivation experiment (§II-B / Fig 2) ------------------------------------

TEST(Motivation, OverheadDegradesPerformanceMonotonically) {
    MotivationConfig config;
    config.packets = 2000;
    double last_fct = 0.0;
    double last_goodput_drop = -1.0;
    for (const int overhead : {28, 48, 68, 88, 108}) {
        const MotivationPoint p = run_motivation(config, 1500, overhead);
        EXPECT_GT(p.fct_increase, 0.0) << overhead;
        EXPECT_GT(p.goodput_decrease, 0.0) << overhead;
        EXPECT_GE(p.fct_increase, last_fct) << overhead;
        EXPECT_GE(p.goodput_decrease, last_goodput_drop) << overhead;
        last_fct = p.fct_increase;
        last_goodput_drop = p.goodput_decrease;
    }
}

TEST(Motivation, ZeroOverheadIsBaseline) {
    MotivationConfig config;
    config.packets = 500;
    const MotivationPoint p = run_motivation(config, 1024, 0);
    EXPECT_NEAR(p.fct_increase, 0.0, 1e-12);
    EXPECT_NEAR(p.goodput_decrease, 0.0, 1e-12);
}

TEST(Motivation, PaperBallparkAt48Bytes) {
    // §I cites ~25% FCT increase at 48B overhead for DCN-sized packets.
    MotivationConfig config;
    config.packets = 2000;
    const MotivationPoint p = run_motivation(config, 512, 48);
    EXPECT_GT(p.fct_increase, 0.05);
    EXPECT_LT(p.fct_increase, 0.40);
}

TEST(Motivation, Validation) {
    MotivationConfig config;
    EXPECT_THROW((void)run_motivation(config, 20, 0), std::invalid_argument);
    EXPECT_THROW((void)run_motivation(config, 512, -1), std::invalid_argument);
}

// ---- Arena + event heap -------------------------------------------------------

TEST(Arena, ReusesFreedSlotsLifo) {
    Arena<int> arena(4);
    const std::uint32_t a = arena.alloc();
    const std::uint32_t b = arena.alloc();
    arena[a] = 7;
    arena[b] = 9;
    arena.free(a);
    EXPECT_EQ(arena.alloc(), a);  // LIFO: the just-freed slot comes back first
    const ArenaStats& stats = arena.stats();
    EXPECT_EQ(stats.live, 2u);
    EXPECT_EQ(stats.peak_live, 2u);
    EXPECT_EQ(stats.allocations, 3u);
    EXPECT_EQ(stats.reuses, 1u);
}

TEST(Arena, ExhaustionReturnsNull) {
    Arena<int> arena(4, 6);
    std::vector<std::uint32_t> slots;
    for (int i = 0; i < 6; ++i) {
        const std::uint32_t s = arena.alloc();
        ASSERT_NE(s, kArenaNull);
        slots.push_back(s);
    }
    EXPECT_EQ(arena.alloc(), kArenaNull);
    arena.free(slots.back());
    EXPECT_NE(arena.alloc(), kArenaNull);  // freed capacity is usable again
    EXPECT_EQ(arena.stats().blocks, 2u);   // 6 slots over 4-slot blocks
}

TEST(EventHeap, PopsInTimeThenOrderKey) {
    EventHeap heap;
    heap.push(EventKey{2.0, 1, 0});
    heap.push(EventKey{1.0, 9, 1});
    heap.push(EventKey{1.0, 3, 2});
    heap.push(EventKey{0.5, 7, 3});
    std::vector<std::uint32_t> popped;
    while (!heap.empty()) popped.push_back(heap.pop().payload);
    EXPECT_EQ(popped, (std::vector<std::uint32_t>{3, 2, 1, 0}));
}

// ---- Sharded engine -----------------------------------------------------------

// The engine's single-flow adapter must reproduce the retained reference
// simulator bit for bit across message shapes, hop counts, and bandwidths.
TEST(Engine, AdapterMatchesReferenceBitIdentical) {
    const std::vector<std::vector<HopSpec>> hop_sets{
        {{0.5, 1.0}},
        {{0.0, 0.0}},
        {{0.5, 1.0}, {2.0, 0.3}, {0.0, 0.0}, {1.5, 1.0}},
        std::vector<HopSpec>(5, HopSpec{0.5, 1.0}),
    };
    SimConfig config;
    for (const double gbps : {100.0, 10.0, 0.37}) {
        config.link_bandwidth_gbps = gbps;
        for (const std::int64_t payload : {std::int64_t{0}, std::int64_t{1},
                                           std::int64_t{1000}, std::int64_t{1500},
                                           std::int64_t{14600}, std::int64_t{146000}}) {
            for (const int overhead : {0, 60, 146}) {
                FlowSpec spec;
                spec.payload_bytes_total = payload;
                spec.overhead_bytes = overhead;
                for (const auto& hops : hop_sets) {
                    const FlowResult engine = simulate_flow(hops, spec, config);
                    const FlowResult reference =
                        simulate_flow_reference(hops, spec, config);
                    EXPECT_EQ(engine.packets, reference.packets);
                    EXPECT_EQ(engine.payload_per_packet, reference.payload_per_packet);
                    EXPECT_EQ(engine.fct_us, reference.fct_us)
                        << gbps << " " << payload << " " << overhead;
                    EXPECT_EQ(engine.goodput_gbps, reference.goodput_gbps);
                }
            }
        }
    }
}

// A contended-link hand check: two one-packet flows share a hop; the second
// launches mid-transmission and queues behind the first in the link FIFO.
TEST(Engine, ContendedLinkFifoHandCheck) {
    Engine engine;
    const RouteId route = engine.add_route(std::vector<HopSpec>{{0.5, 1.0}});
    FlowSpec spec;
    spec.payload_bytes_total = 1460;  // one full 1500B wire packet, tx = 0.12us
    const FlowId first = engine.add_flow(spec, route, 0.0);
    const FlowId second = engine.add_flow(spec, route, 0.05);
    engine.run();
    EXPECT_NEAR(engine.result(first).fct_us, 0.12 + 1.5, 1e-9);
    // Second flow waits for the transmitter: starts at 0.12, delivered at
    // 0.24 + 1.5, FCT measured from its own launch at 0.05.
    EXPECT_NEAR(engine.result(second).fct_us, 0.24 + 1.5 - 0.05, 1e-9);
}

// Heavy concurrent traffic over a Table III WAN: shortest-path routes
// between pseudorandom endpoint pairs, interned so overlapping paths
// contend. Used by the determinism and fast-path tests below.
std::vector<double> run_wan_traffic(int threads, int shards, bool fastpath,
                                    int flows) {
    const net::Network net = net::table3_topology(3);
    EngineConfig config;
    config.threads = threads;
    config.shards = shards;
    config.enable_fastpath = fastpath;
    Engine engine(config);
    PathInterner interner;
    std::mt19937 rng(0x5eed);
    const auto n = static_cast<net::SwitchId>(net.switch_count());
    std::vector<FlowId> ids;
    for (int i = 0; i < flows; ++i) {
        const auto a = static_cast<net::SwitchId>(rng() % n);
        auto b = static_cast<net::SwitchId>(rng() % n);
        if (b == a) b = (b + 1) % n;
        const auto path = net::shortest_path(net, a, b);
        if (!path.has_value()) {  // Table III graphs are connected
            throw std::runtime_error("run_wan_traffic: disconnected pair");
        }
        const RouteId route = interner.add_path(engine, net, *path);
        FlowSpec spec;
        spec.payload_bytes_total = 1460 * (1 + static_cast<int>(rng() % 64));
        spec.overhead_bytes = static_cast<int>(rng() % 120);
        ids.push_back(engine.add_flow(spec, route, 0.25 * i));
    }
    engine.run();
    std::vector<double> fct;
    fct.reserve(ids.size());
    for (const FlowId id : ids) fct.push_back(engine.result(id).fct_us);
    return fct;
}

// Results must be bit-identical at any shard/thread count (the ISSUE's
// determinism contract): same WAN, same flows, FCTs compared with ==.
TEST(Engine, DeterministicAcrossThreadCounts) {
    const std::vector<double> one = run_wan_traffic(1, 0, true, 160);
    const std::vector<double> two = run_wan_traffic(2, 0, true, 160);
    const std::vector<double> eight = run_wan_traffic(8, 0, true, 160);
    const std::vector<double> lopsided = run_wan_traffic(3, 7, true, 160);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
    EXPECT_EQ(one, lopsided);
}

// The fast paths are an optimization, not a model change: with contention
// forced on (shared WAN routes) and off (fastpath disabled) the FCTs agree
// to relative 1e-9.
TEST(Engine, FastPathAgreesWithSlowPath) {
    const std::vector<double> fast = run_wan_traffic(1, 0, true, 80);
    const std::vector<double> slow = run_wan_traffic(1, 0, false, 80);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast[i], slow[i], 1e-9 * std::max(1.0, slow[i])) << i;
    }
}

// A private route with a single flow must take the analytic fast path and
// still agree with the batch path bit for bit (identical FP operations).
TEST(Engine, FastPathHitsOnPrivateRoute) {
    for (const bool fastpath : {true, false}) {
        EngineConfig config;
        config.enable_fastpath = fastpath;
        Engine engine(config);
        const RouteId route =
            engine.add_route(std::vector<HopSpec>{{0.5, 1.0}, {2.0, 0.3}});
        FlowSpec spec;
        spec.payload_bytes_total = 14600;
        const FlowId flow = engine.add_flow(spec, route);
        engine.run();
        EXPECT_EQ(engine.stats().fastpath_flows, fastpath ? 1 : 0);
        EXPECT_EQ(engine.stats().events, fastpath ? 0 : 4);  // 2 batches x 2 hops
        EXPECT_NEAR(engine.result(flow).fct_us,
                    simulate_flow({{0.5, 1.0}, {2.0, 0.3}}, spec).fct_us, 1e-12);
    }
}

TEST(Engine, EventPoolCapThrows) {
    EngineConfig config;
    config.enable_fastpath = false;
    config.max_events_per_shard = 1;
    Engine engine(config);
    const RouteId route = engine.add_route(std::vector<HopSpec>{{0.5, 1.0}});
    FlowSpec spec;
    spec.payload_bytes_total = 14600;
    (void)engine.add_flow(spec, route);
    EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, Validation) {
    EngineConfig bad;
    bad.link_bandwidth_gbps = 0.0;
    EXPECT_THROW(Engine{bad}, std::invalid_argument);
    Engine engine;
    EXPECT_THROW((void)engine.add_link(-1.0, 0.0), std::invalid_argument);
    EXPECT_THROW((void)engine.add_route(std::vector<LinkId>{42}),
                 std::invalid_argument);
    const RouteId route = engine.add_route(std::vector<HopSpec>{{0.5, 1.0}});
    EXPECT_THROW((void)engine.add_flow(FlowSpec{}, route + 1),
                 std::invalid_argument);
    engine.run();
    EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(FlowSim, EffectivePayloadValidatesDegenerateSpecs) {
    FlowSpec spec;
    spec.mtu_bytes = 0;  // would divide by a non-positive packet payload
    EXPECT_THROW((void)effective_payload(spec), std::invalid_argument);
    spec.mtu_bytes = -1500;
    EXPECT_THROW((void)effective_payload(spec), std::invalid_argument);
    spec.mtu_bytes = 40;  // MTU exactly the base headers: zero payload room
    spec.base_header_bytes = 40;
    EXPECT_THROW((void)effective_payload(spec), std::invalid_argument);
    spec.mtu_bytes = 30;  // MTU below the base headers
    EXPECT_THROW((void)effective_payload(spec), std::invalid_argument);
    spec.mtu_bytes = 1500;
    spec.base_header_bytes = -1;
    EXPECT_THROW((void)effective_payload(spec), std::invalid_argument);
    spec.base_header_bytes = 40;
    spec.overhead_bytes = -1;
    EXPECT_THROW((void)effective_payload(spec), std::invalid_argument);
    spec.overhead_bytes = 0;
    EXPECT_EQ(effective_payload(spec), 1460);
}

TEST(Testbed, LinearAllProgrammable) {
    const net::Network n = make_testbed();
    EXPECT_EQ(n.switch_count(), 3u);
    EXPECT_EQ(n.link_count(), 2u);
    EXPECT_EQ(n.programmable_switches().size(), 3u);
    EXPECT_TRUE(n.is_connected());
    TestbedConfig bad;
    bad.switch_count = 0;
    EXPECT_THROW((void)make_testbed(bad), std::invalid_argument);
}

}  // namespace
}  // namespace hermes::sim
