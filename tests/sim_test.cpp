// Simulator tests: event queue semantics, flow packetization, FCT/goodput
// physics, and the §II-B motivation rig.
#include <gtest/gtest.h>

#include "sim/events.h"
#include "sim/flowsim.h"
#include "sim/testbed.h"

namespace hermes::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    const double last = q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(last, 3.0);
}

TEST(EventQueue, FifoAmongSimultaneous) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(1.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbacksMaySchedule) {
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] {
        ++fired;
        q.schedule(2.0, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastSchedulingRejected) {
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunStepsLimits) {
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 5; ++i) q.schedule(i, [&] { ++fired; });
    EXPECT_EQ(q.run_steps(2), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 3u);
}

// ---- Flow simulation ---------------------------------------------------------

TEST(FlowSim, EffectivePayloadShrinksWithOverhead) {
    FlowSpec spec;
    spec.mtu_bytes = 1500;
    spec.base_header_bytes = 40;
    spec.overhead_bytes = 0;
    EXPECT_EQ(effective_payload(spec), 1460);
    spec.overhead_bytes = 60;
    EXPECT_EQ(effective_payload(spec), 1400);
    spec.overhead_bytes = 1460;
    EXPECT_THROW((void)effective_payload(spec), std::invalid_argument);
}

TEST(FlowSim, SinglePacketSingleHopLatency) {
    // One 1000B-payload packet over one hop at 100 Gbps:
    // tx = 1040*8/1e11 s = 83.2ns = 0.0832us, plus 0.5us prop + 1us switch.
    FlowSpec spec;
    spec.payload_bytes_total = 1000;
    spec.mtu_bytes = 1500;
    const std::vector<HopSpec> hops{{0.5, 1.0}};
    const FlowResult r = simulate_flow(hops, spec);
    EXPECT_EQ(r.packets, 1);
    EXPECT_NEAR(r.fct_us, 0.0832 + 0.5 + 1.0, 1e-9);
}

TEST(FlowSim, PacketCountFromOverhead) {
    FlowSpec spec;
    spec.payload_bytes_total = 14600;  // 10 full packets at zero overhead
    const FlowResult zero = simulate_flow({{0.5, 1.0}}, spec);
    EXPECT_EQ(zero.packets, 10);
    spec.overhead_bytes = 146;  // payload 1314 -> ceil(14600/1314) = 12
    const FlowResult loaded = simulate_flow({{0.5, 1.0}}, spec);
    EXPECT_EQ(loaded.packets, 12);
    EXPECT_GT(loaded.fct_us, zero.fct_us);
    EXPECT_LT(loaded.goodput_gbps, zero.goodput_gbps);
}

TEST(FlowSim, PipeliningAcrossHops) {
    // N packets over H hops: FCT ~ N*tx + H*(tx + prop + switch) under
    // store-and-forward pipelining; check against closed form.
    FlowSpec spec;
    spec.payload_bytes_total = 1460 * 100;
    const std::vector<HopSpec> hops(5, HopSpec{0.5, 1.0});
    const FlowResult r = simulate_flow(hops, spec);
    const double tx = 1500.0 * 8.0 / 1e5;  // us at 100 Gbps
    const double expected = 99 * tx + 5 * (tx + 1.5);
    EXPECT_NEAR(r.fct_us, expected, 1e-6);
}

TEST(FlowSim, GoodputApproachesLineRateForLargeFlows) {
    FlowSpec spec;
    spec.payload_bytes_total = 1460 * 5000;
    const FlowResult r = simulate_flow({{0.5, 1.0}}, spec);
    // payload/wire ratio at zero overhead = 1460/1500 = 97.3% of 100 Gbps.
    EXPECT_NEAR(r.goodput_gbps, 100.0 * 1460.0 / 1500.0, 1.0);
}

TEST(FlowSim, ZeroPayloadZeroPackets) {
    FlowSpec spec;
    const FlowResult r = simulate_flow({{0.5, 1.0}}, spec);
    EXPECT_EQ(r.packets, 0);
    EXPECT_EQ(r.fct_us, 0.0);
}

TEST(FlowSim, ShortFinalPacket) {
    FlowSpec spec;
    spec.payload_bytes_total = 1500;  // 1460 + 40 remainder
    const FlowResult r = simulate_flow({{0.0, 0.0}}, spec);
    EXPECT_EQ(r.packets, 2);
    // Full 1500B wire packet followed by a 40+40=80B runt, back to back.
    const double expected = (1500.0 + 80.0) * 8.0 / 1e5;
    EXPECT_NEAR(r.fct_us, expected, 1e-9);
}

TEST(FlowSim, BandwidthValidation) {
    SimConfig config;
    config.link_bandwidth_gbps = 0.0;
    FlowSpec spec;
    spec.payload_bytes_total = 100;
    EXPECT_THROW((void)simulate_flow({{0, 0}}, spec, config), std::invalid_argument);
}

// ---- Motivation experiment (§II-B / Fig 2) ------------------------------------

TEST(Motivation, OverheadDegradesPerformanceMonotonically) {
    MotivationConfig config;
    config.packets = 2000;
    double last_fct = 0.0;
    double last_goodput_drop = -1.0;
    for (const int overhead : {28, 48, 68, 88, 108}) {
        const MotivationPoint p = run_motivation(config, 1500, overhead);
        EXPECT_GT(p.fct_increase, 0.0) << overhead;
        EXPECT_GT(p.goodput_decrease, 0.0) << overhead;
        EXPECT_GE(p.fct_increase, last_fct) << overhead;
        EXPECT_GE(p.goodput_decrease, last_goodput_drop) << overhead;
        last_fct = p.fct_increase;
        last_goodput_drop = p.goodput_decrease;
    }
}

TEST(Motivation, ZeroOverheadIsBaseline) {
    MotivationConfig config;
    config.packets = 500;
    const MotivationPoint p = run_motivation(config, 1024, 0);
    EXPECT_NEAR(p.fct_increase, 0.0, 1e-12);
    EXPECT_NEAR(p.goodput_decrease, 0.0, 1e-12);
}

TEST(Motivation, PaperBallparkAt48Bytes) {
    // §I cites ~25% FCT increase at 48B overhead for DCN-sized packets.
    MotivationConfig config;
    config.packets = 2000;
    const MotivationPoint p = run_motivation(config, 512, 48);
    EXPECT_GT(p.fct_increase, 0.05);
    EXPECT_LT(p.fct_increase, 0.40);
}

TEST(Motivation, Validation) {
    MotivationConfig config;
    EXPECT_THROW((void)run_motivation(config, 20, 0), std::invalid_argument);
    EXPECT_THROW((void)run_motivation(config, 512, -1), std::invalid_argument);
}

TEST(Testbed, LinearAllProgrammable) {
    const net::Network n = make_testbed();
    EXPECT_EQ(n.switch_count(), 3u);
    EXPECT_EQ(n.link_count(), 2u);
    EXPECT_EQ(n.programmable_switches().size(), 3u);
    EXPECT_TRUE(n.is_connected());
    TestbedConfig bad;
    bad.switch_count = 0;
    EXPECT_THROW((void)make_testbed(bad), std::invalid_argument);
}

}  // namespace
}  // namespace hermes::sim
