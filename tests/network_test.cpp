#include <gtest/gtest.h>

#include "net/builders.h"
#include "net/network.h"
#include "net/topozoo.h"

namespace hermes::net {
namespace {

TEST(Network, AddSwitchValidation) {
    Network n;
    SwitchProps bad;
    bad.stages = 0;
    EXPECT_THROW((void)n.add_switch(bad), std::invalid_argument);
    bad.stages = 12;
    bad.stage_capacity = 0.0;
    EXPECT_THROW((void)n.add_switch(bad), std::invalid_argument);
    bad.stage_capacity = 1.0;
    bad.latency_us = -1.0;
    EXPECT_THROW((void)n.add_switch(bad), std::invalid_argument);
}

TEST(Network, AutoNames) {
    Network n;
    n.add_switch(SwitchProps{});
    n.add_switch(SwitchProps{});
    EXPECT_EQ(n.props(0).name, "sw0");
    EXPECT_EQ(n.props(1).name, "sw1");
}

TEST(Network, LinkValidation) {
    Network n;
    n.add_switch(SwitchProps{});
    n.add_switch(SwitchProps{});
    EXPECT_THROW(n.add_link(0, 5, 1.0), std::out_of_range);
    EXPECT_THROW(n.add_link(0, 0, 1.0), std::invalid_argument);
    EXPECT_THROW(n.add_link(0, 1, -1.0), std::invalid_argument);
    n.add_link(0, 1, 3.0);
    EXPECT_THROW(n.add_link(1, 0, 3.0), std::invalid_argument);  // duplicate
}

TEST(Network, NeighborsAndLatency) {
    Network n;
    for (int i = 0; i < 3; ++i) n.add_switch(SwitchProps{});
    n.add_link(0, 1, 2.0);
    n.add_link(1, 2, 5.0);
    EXPECT_EQ(n.neighbors(1).size(), 2u);
    EXPECT_DOUBLE_EQ(*n.link_latency(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(*n.link_latency(1, 0), 2.0);
    EXPECT_FALSE(n.link_latency(0, 2).has_value());
}

TEST(Network, ProgrammableSubsetAndCapacity) {
    Network n;
    SwitchProps p;
    p.programmable = true;
    p.stages = 10;
    p.stage_capacity = 2.0;
    n.add_switch(p);
    n.add_switch(SwitchProps{});  // not programmable
    n.add_switch(p);
    EXPECT_EQ(n.programmable_switches(), (std::vector<SwitchId>{0, 2}));
    EXPECT_DOUBLE_EQ(n.total_programmable_capacity(), 40.0);
}

TEST(Network, Connectivity) {
    Network n;
    for (int i = 0; i < 3; ++i) n.add_switch(SwitchProps{});
    n.add_link(0, 1, 1.0);
    EXPECT_FALSE(n.is_connected());
    n.add_link(1, 2, 1.0);
    EXPECT_TRUE(n.is_connected());
}

// ---- Builders ------------------------------------------------------------------

TopologyConfig test_config() {
    TopologyConfig c;
    c.min_link_latency_us = 1.0;
    c.max_link_latency_us = 2.0;
    return c;
}

TEST(Builders, LinearAllProgrammable) {
    util::SplitMix64 rng(1);
    const Network n = linear_topology(4, test_config(), rng);
    EXPECT_EQ(n.switch_count(), 4u);
    EXPECT_EQ(n.link_count(), 3u);
    EXPECT_EQ(n.programmable_switches().size(), 4u);
    EXPECT_TRUE(n.is_connected());
}

TEST(Builders, RingAndStar) {
    util::SplitMix64 rng(2);
    const Network ring = ring_topology(6, test_config(), rng);
    EXPECT_EQ(ring.link_count(), 6u);
    EXPECT_TRUE(ring.is_connected());
    const Network star = star_topology(5, test_config(), rng);
    EXPECT_EQ(star.link_count(), 4u);
    EXPECT_EQ(star.neighbors(0).size(), 4u);
}

TEST(Builders, FatTreeShape) {
    util::SplitMix64 rng(3);
    const Network ft = fat_tree_topology(4, test_config(), rng);
    // k=4: 4 core + 8 agg + 8 edge = 20 switches, 8*2 + 8*2 = 32 links.
    EXPECT_EQ(ft.switch_count(), 20u);
    EXPECT_EQ(ft.link_count(), 32u);
    EXPECT_TRUE(ft.is_connected());
    EXPECT_THROW((void)fat_tree_topology(3, test_config(), rng), std::invalid_argument);
}

TEST(Builders, RandomTopologyShapeAndConnectivity) {
    util::SplitMix64 rng(4);
    const Network n = random_topology(20, 30, test_config(), rng);
    EXPECT_EQ(n.switch_count(), 20u);
    EXPECT_EQ(n.link_count(), 30u);
    EXPECT_TRUE(n.is_connected());
}

TEST(Builders, RandomTopologyValidation) {
    util::SplitMix64 rng(5);
    EXPECT_THROW((void)random_topology(10, 8, test_config(), rng), std::invalid_argument);
    EXPECT_THROW((void)random_topology(4, 7, test_config(), rng), std::invalid_argument);
}

TEST(Builders, ProgrammableFractionHonored) {
    util::SplitMix64 rng(6);
    TopologyConfig c = test_config();
    c.programmable_fraction = 0.5;
    const Network n = random_topology(40, 60, c, rng);
    EXPECT_EQ(n.programmable_switches().size(), 20u);
}

TEST(Builders, LinkLatencyWithinRange) {
    util::SplitMix64 rng(7);
    TopologyConfig c;
    c.min_link_latency_us = 1000.0;
    c.max_link_latency_us = 10000.0;
    const Network n = random_topology(10, 15, c, rng);
    for (const Link& l : n.links()) {
        EXPECT_GE(l.latency_us, 1000.0);
        EXPECT_LE(l.latency_us, 10000.0);
    }
}

// ---- Table III topologies ---------------------------------------------------------

TEST(Topozoo, ShapesMatchTableIII) {
    EXPECT_EQ(table3_shape(2).nodes, 70u);
    EXPECT_EQ(table3_shape(2).edges, 85u);
    EXPECT_EQ(table3_shape(7).nodes, 68u);
    EXPECT_EQ(table3_shape(7).edges, 92u);
    EXPECT_EQ(table3_shape(9).nodes, 74u);
    EXPECT_EQ(table3_shape(9).edges, 92u);
    EXPECT_EQ(table3_shape(10).nodes, 69u);
    EXPECT_EQ(table3_shape(10).edges, 98u);
    EXPECT_THROW((void)table3_shape(0), std::out_of_range);
    EXPECT_THROW((void)table3_shape(11), std::out_of_range);
}

TEST(Topozoo, AllTenBuildConnectedWithPaperSettings) {
    for (int id = 1; id <= kTopologyCount; ++id) {
        const Network n = table3_topology(id);
        const TopologyShape shape = table3_shape(id);
        EXPECT_EQ(n.switch_count(), shape.nodes) << id;
        EXPECT_EQ(n.link_count(), shape.edges) << id;
        EXPECT_TRUE(n.is_connected()) << id;
        // 50% programmable, Tofino profile, t_s = 1us, t_l in [1ms, 10ms].
        EXPECT_NEAR(static_cast<double>(n.programmable_switches().size()),
                    shape.nodes * 0.5, 1.0)
            << id;
        for (const Link& l : n.links()) {
            EXPECT_GE(l.latency_us, 1000.0) << id;
            EXPECT_LE(l.latency_us, 10000.0) << id;
        }
        EXPECT_DOUBLE_EQ(n.props(0).latency_us, 1.0) << id;
    }
}

TEST(Topozoo, DeterministicPerIdAndSeed) {
    const Network a = table3_topology(3, 42);
    const Network b = table3_topology(3, 42);
    ASSERT_EQ(a.link_count(), b.link_count());
    for (std::size_t i = 0; i < a.links().size(); ++i) {
        EXPECT_EQ(a.links()[i].a, b.links()[i].a);
        EXPECT_EQ(a.links()[i].b, b.links()[i].b);
        EXPECT_DOUBLE_EQ(a.links()[i].latency_us, b.links()[i].latency_us);
    }
}

}  // namespace
}  // namespace hermes::net
