#include <gtest/gtest.h>

#include "tdg/field.h"
#include "tdg/mat.h"

namespace hermes::tdg {
namespace {

TEST(Field, Constructors) {
    const Field h = header_field("ipv4.dst", 4);
    EXPECT_EQ(h.kind, FieldKind::kHeader);
    EXPECT_FALSE(h.is_metadata());
    const Field m = metadata_field("meta.idx", 4);
    EXPECT_TRUE(m.is_metadata());
}

TEST(Field, Validation) {
    EXPECT_THROW((void)header_field("", 4), std::invalid_argument);
    EXPECT_THROW((void)header_field("x", 0), std::invalid_argument);
    EXPECT_THROW((void)metadata_field("x", -1), std::invalid_argument);
}

TEST(Field, TableOneCatalogSizes) {
    // Table I of the paper.
    EXPECT_EQ(common_metadata::switch_identifier().size_bytes, 4);
    EXPECT_EQ(common_metadata::queue_lengths().size_bytes, 6);
    EXPECT_EQ(common_metadata::timestamps().size_bytes, 12);
    EXPECT_EQ(common_metadata::counter_index().size_bytes, 4);
}

TEST(Field, MetadataBytesCountsOnlyMetadata) {
    const std::vector<Field> fields{header_field("h1", 6), metadata_field("m1", 4),
                                    metadata_field("m2", 2)};
    EXPECT_EQ(metadata_bytes(fields), 6);
}

TEST(Field, MetadataBytesDeduplicatesByName) {
    const std::vector<Field> fields{metadata_field("m", 4), metadata_field("m", 4),
                                    metadata_field("n", 1)};
    EXPECT_EQ(metadata_bytes(fields), 5);
}

TEST(Field, MetadataBytesEmpty) { EXPECT_EQ(metadata_bytes({}), 0); }

// ---- Mat --------------------------------------------------------------------

Mat sample_mat() {
    return Mat("lpm", {header_field("ipv4.dst", 4)},
               {Action{"set_nh", {metadata_field("meta.nh", 4)}},
                Action{"drop", {metadata_field("meta.drop", 1)}}},
               128, 0.4, MatchKind::kLpm);
}

TEST(Mat, PropertiesExposed) {
    const Mat m = sample_mat();
    EXPECT_EQ(m.name(), "lpm");
    EXPECT_EQ(m.match_fields().size(), 1u);
    EXPECT_EQ(m.actions().size(), 2u);
    EXPECT_EQ(m.rule_capacity(), 128);
    EXPECT_DOUBLE_EQ(m.resource_units(), 0.4);
    EXPECT_EQ(m.match_kind(), MatchKind::kLpm);
}

TEST(Mat, ModifiedFieldsUnionOfActionWrites) {
    const Mat m = sample_mat();
    ASSERT_EQ(m.modified_fields().size(), 2u);
    EXPECT_TRUE(m.modifies_field("meta.nh"));
    EXPECT_TRUE(m.modifies_field("meta.drop"));
    EXPECT_FALSE(m.modifies_field("ipv4.dst"));
}

TEST(Mat, ModifiedFieldsDeduplicated) {
    const Mat m("t", {header_field("h", 1)},
                {Action{"a1", {metadata_field("m", 4)}},
                 Action{"a2", {metadata_field("m", 4)}}},
                1, 0.1);
    EXPECT_EQ(m.modified_fields().size(), 1u);
}

TEST(Mat, MatchesField) {
    const Mat m = sample_mat();
    EXPECT_TRUE(m.matches_field("ipv4.dst"));
    EXPECT_FALSE(m.matches_field("meta.nh"));
}

TEST(Mat, Validation) {
    EXPECT_THROW(Mat("", {}, {}, 1, 0.1), std::invalid_argument);
    EXPECT_THROW(Mat("x", {}, {}, -1, 0.1), std::invalid_argument);
    EXPECT_THROW(Mat("x", {}, {}, 1, -0.1), std::invalid_argument);
}

TEST(Mat, RuleCapacityEnforced) {
    Mat m("t", {header_field("h", 1)}, {Action{"a", {}}}, 2, 0.1);
    m.add_rule(Rule{"k1", 0});
    m.add_rule(Rule{"k2", 0});
    EXPECT_THROW(m.add_rule(Rule{"k3", 0}), std::runtime_error);
}

TEST(Mat, RuleActionIndexValidated) {
    Mat m("t", {header_field("h", 1)}, {Action{"a", {}}}, 4, 0.1);
    EXPECT_THROW(m.add_rule(Rule{"k", 1}), std::out_of_range);
}

TEST(Mat, SameStructureIgnoresNameAndRules) {
    Mat a("a", {header_field("h", 4)}, {Action{"act", {metadata_field("m", 2)}}}, 16, 0.2);
    Mat b("b", {header_field("h", 4)}, {Action{"act", {metadata_field("m", 2)}}}, 16, 0.2);
    b.add_rule(Rule{"k", 0});
    EXPECT_TRUE(a.same_structure(b));
}

TEST(Mat, SameStructureDetectsDifferences) {
    const Mat a("a", {header_field("h", 4)}, {Action{"act", {metadata_field("m", 2)}}}, 16,
                0.2);
    const Mat diff_match("b", {header_field("h2", 4)},
                         {Action{"act", {metadata_field("m", 2)}}}, 16, 0.2);
    const Mat diff_capacity("c", {header_field("h", 4)},
                            {Action{"act", {metadata_field("m", 2)}}}, 32, 0.2);
    const Mat diff_action("d", {header_field("h", 4)},
                          {Action{"other", {metadata_field("m", 2)}}}, 16, 0.2);
    EXPECT_FALSE(a.same_structure(diff_match));
    EXPECT_FALSE(a.same_structure(diff_capacity));
    EXPECT_FALSE(a.same_structure(diff_action));
}

}  // namespace
}  // namespace hermes::tdg
