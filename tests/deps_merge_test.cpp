#include <gtest/gtest.h>

#include "tdg/deps.h"
#include "tdg/merge.h"

namespace hermes::tdg {
namespace {

Mat make_mat(const std::string& name, std::vector<Field> matches,
             std::vector<Field> writes, double resource = 0.1) {
    return Mat(name, std::move(matches), {Action{"act", std::move(writes)}}, 16, resource);
}

// ---- Dependency inference ---------------------------------------------------

TEST(Deps, MatchDependency) {
    // a writes meta.idx, b matches meta.idx -> M.
    const Mat a = make_mat("a", {header_field("h", 2)}, {metadata_field("meta.idx", 4)});
    const Mat b = make_mat("b", {metadata_field("meta.idx", 4)}, {metadata_field("m2", 1)});
    const auto dep = infer_dependency(a, b);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(*dep, DepType::kMatch);
}

TEST(Deps, ActionDependency) {
    // Both write ipv4.ttl -> A.
    const Mat a = make_mat("a", {header_field("h", 2)}, {header_field("ipv4.ttl", 1)});
    const Mat b = make_mat("b", {header_field("h2", 2)}, {header_field("ipv4.ttl", 1)});
    const auto dep = infer_dependency(a, b);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(*dep, DepType::kAction);
}

TEST(Deps, ReverseMatchDependency) {
    // a matches ipv4.dst, b modifies ipv4.dst -> R.
    const Mat a = make_mat("a", {header_field("ipv4.dst", 4)}, {metadata_field("m", 1)});
    const Mat b = make_mat("b", {header_field("h", 2)}, {header_field("ipv4.dst", 4)});
    const auto dep = infer_dependency(a, b);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(*dep, DepType::kReverseMatch);
}

TEST(Deps, SuccessorWhenGated) {
    const Mat a = make_mat("a", {header_field("h", 2)}, {metadata_field("m1", 1)});
    const Mat b = make_mat("b", {header_field("h2", 2)}, {metadata_field("m2", 1)});
    EXPECT_FALSE(infer_dependency(a, b).has_value());
    const auto dep = infer_dependency(a, b, /*gated=*/true);
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(*dep, DepType::kSuccessor);
}

TEST(Deps, MatchBeatsActionBeatsReverse) {
    // a writes m (b matches m) and both write shared; M must win.
    const Mat a = make_mat("a", {header_field("x", 1)},
                           {metadata_field("m", 4), metadata_field("shared", 2)});
    const Mat b = make_mat("b", {metadata_field("m", 4)},
                           {metadata_field("shared", 2)});
    EXPECT_EQ(*infer_dependency(a, b), DepType::kMatch);
    // Without the match link, the action link must win over gating.
    const Mat a2 = make_mat("a2", {header_field("x", 1)}, {metadata_field("shared", 2)});
    const Mat b2 = make_mat("b2", {header_field("y", 1)}, {metadata_field("shared", 2)});
    EXPECT_EQ(*infer_dependency(a2, b2, true), DepType::kAction);
}

TEST(Deps, IndependentMats) {
    const Mat a = make_mat("a", {header_field("h1", 2)}, {metadata_field("m1", 1)});
    const Mat b = make_mat("b", {header_field("h2", 2)}, {metadata_field("m2", 1)});
    EXPECT_FALSE(infer_dependency(a, b).has_value());
}

// ---- Merging ----------------------------------------------------------------

Tdg chain2(const std::string& prefix) {
    Tdg t;
    const NodeId a = t.add_node(
        make_mat(prefix + "_a", {header_field("h_" + prefix, 2)},
                 {metadata_field("meta." + prefix, 4)}));
    const NodeId b = t.add_node(
        make_mat(prefix + "_b", {metadata_field("meta." + prefix, 4)},
                 {metadata_field("meta." + prefix + "2", 2)}));
    t.add_edge(a, b, DepType::kMatch);
    return t;
}

TEST(Merge, GraphUnionConcatenates) {
    const Tdg u = graph_union(chain2("p"), chain2("q"));
    EXPECT_EQ(u.node_count(), 4u);
    EXPECT_EQ(u.edge_count(), 2u);
    EXPECT_TRUE(u.find_edge(0, 1).has_value());
    EXPECT_TRUE(u.find_edge(2, 3).has_value());
    EXPECT_TRUE(u.is_dag());
}

TEST(Merge, DeduplicateContractsIdenticalMats) {
    // Two programs sharing a structurally identical hash MAT.
    auto shared = [] {
        return make_mat("hash", {header_field("五tuple", 13)},
                        {metadata_field("meta.idx", 4)});
    };
    Tdg t1;
    const NodeId h1 = t1.add_node(shared());
    const NodeId u1 = t1.add_node(make_mat("p_update", {metadata_field("meta.idx", 4)},
                                           {metadata_field("meta.p", 4)}));
    t1.add_edge(h1, u1, DepType::kMatch);
    Tdg t2;
    const NodeId h2 = t2.add_node(shared());
    const NodeId u2 = t2.add_node(make_mat("q_update", {metadata_field("meta.idx", 4)},
                                           {metadata_field("meta.q", 4)}));
    t2.add_edge(h2, u2, DepType::kMatch);

    const Tdg merged = merge(t1, t2);
    EXPECT_EQ(merged.node_count(), 3u);  // hash deduplicated
    EXPECT_EQ(merged.edge_count(), 2u);  // both update edges kept
    EXPECT_TRUE(merged.is_dag());
}

TEST(Merge, NoFalseDeduplication) {
    const Tdg merged = merge(chain2("p"), chain2("q"));
    EXPECT_EQ(merged.node_count(), 4u);
}

TEST(Merge, DeduplicationSkippedWhenItWouldCycle) {
    // t1: X -> A; t2: A' -> X' where X/X' and A/A' are identical pairs.
    // Contracting both pairs would create X <-> A; at most one contraction
    // may happen and the result must stay a DAG.
    auto mat_x = [] {
        return make_mat("x", {header_field("hx", 2)}, {metadata_field("mx", 2)});
    };
    auto mat_a = [] {
        return make_mat("a", {header_field("ha", 2)}, {metadata_field("ma", 2)});
    };
    Tdg t1;
    t1.add_edge(t1.add_node(mat_x()), t1.add_node(mat_a()), DepType::kSuccessor);
    Tdg t2;
    t2.add_edge(t2.add_node(mat_a()), t2.add_node(mat_x()), DepType::kSuccessor);
    const Tdg merged = merge(t1, t2);
    EXPECT_TRUE(merged.is_dag());
    EXPECT_GE(merged.node_count(), 3u);
}

TEST(Merge, MergeAllReducesSketchFamilies) {
    std::vector<Tdg> tdgs;
    for (int i = 0; i < 4; ++i) {
        Tdg t;
        const NodeId h = t.add_node(make_mat("hash", {header_field("5t", 13)},
                                             {metadata_field("meta.idx", 4)}));
        const NodeId u = t.add_node(
            make_mat("u" + std::to_string(i), {metadata_field("meta.idx", 4)},
                     {metadata_field("meta.v" + std::to_string(i), 4)}));
        t.add_edge(h, u, DepType::kMatch);
        tdgs.push_back(std::move(t));
    }
    const Tdg merged = merge_all(std::move(tdgs));
    EXPECT_EQ(merged.node_count(), 5u);  // 1 shared hash + 4 updates
    EXPECT_EQ(merged.edge_count(), 4u);
}

TEST(Merge, MergeAllEmptyThrows) {
    EXPECT_THROW((void)merge_all({}), std::invalid_argument);
}

TEST(Merge, DeduplicateReturnsEliminationCount) {
    Tdg u = graph_union(chain2("p"), chain2("p"));  // identical twice
    const std::size_t eliminated = deduplicate(u);
    EXPECT_EQ(eliminated, 2u);
    EXPECT_EQ(u.node_count(), 2u);
}

}  // namespace
}  // namespace hermes::tdg
