// Unit tests for the root cutting planes (milp/cuts.h) and the shared
// pseudocost branching table (milp/branching.h): separator correctness and
// validity for the integer hull, the root loop's bound monotonicity and
// objective invariance, the formulation's row-group exposure, and the
// deterministic branching selection rule.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "core/formulation.h"
#include "milp/branching.h"
#include "milp/cuts.h"
#include "milp/solver.h"
#include "sim/testbed.h"
#include "util/rng.h"

namespace hermes::milp {
namespace {

constexpr double kTol = 1e-6;

// Every integer-feasible point of `model` must satisfy `cut` — checked by
// brute force over all binary assignments (models under ~16 binaries).
void expect_valid_for_integer_hull(const Model& model, const Cut& cut) {
    const std::size_t n = model.variable_count();
    ASSERT_LE(n, 16u);
    for (std::size_t mask = 0; mask < (1u << n); ++mask) {
        std::vector<double> point(n);
        for (std::size_t j = 0; j < n; ++j) point[j] = (mask >> j) & 1u ? 1.0 : 0.0;
        if (!model.is_feasible(point, 1e-9)) continue;
        EXPECT_LE(cut.expr.evaluate(point), cut.rhs + 1e-9)
            << "cut " << cut.name << " cuts off feasible point " << mask;
    }
}

TEST(Cuts, CoverSeparatedOnFractionalKnapsack) {
    // 3 + 3 + 3 > 7: all three binaries form a minimal cover, so
    // x0 + x1 + x2 <= 2 — violated by the fractional point (.9, .9, .9).
    Model m;
    LinExpr row;
    for (int i = 0; i < 3; ++i) row += LinExpr::term(m.add_binary(), 3.0);
    m.add_constraint(row, Sense::kLe, 7.0, "cap");
    m.minimize(LinExpr{});
    const std::vector<double> point{0.9, 0.9, 0.9};
    const std::vector<Cut> cuts = separate_cover_cuts(m, point, 8, 1e-4);
    ASSERT_EQ(cuts.size(), 1u);
    EXPECT_EQ(cuts[0].rhs, 2.0);
    EXPECT_EQ(cuts[0].expr.terms().size(), 3u);
    EXPECT_GT(cuts[0].violation(point), 1e-4);
    expect_valid_for_integer_hull(m, cuts[0]);
}

TEST(Cuts, CoverNotSeparatedWhenPointIsInteger) {
    Model m;
    LinExpr row;
    for (int i = 0; i < 3; ++i) row += LinExpr::term(m.add_binary(), 3.0);
    m.add_constraint(row, Sense::kLe, 7.0, "cap");
    m.minimize(LinExpr{});
    EXPECT_TRUE(separate_cover_cuts(m, {1.0, 1.0, 0.0}, 8, 1e-4).empty());
}

TEST(Cuts, CliqueSeparatedFromPairwiseConflicts) {
    // 5 + 5 > 7 and 5 + 4 > 7: all three binaries pairwise conflict, so
    // x0 + x1 + x2 <= 1 — violated at (.6, .6, .5).
    Model m;
    const VarId a = m.add_binary("a");
    const VarId b = m.add_binary("b");
    const VarId c = m.add_binary("c");
    m.add_constraint(LinExpr::term(a, 5.0) + LinExpr::term(b, 5.0) +
                         LinExpr::term(c, 4.0),
                     Sense::kLe, 7.0, "cap");
    m.minimize(LinExpr{});
    const std::vector<double> point{0.6, 0.6, 0.5};
    const std::vector<Cut> cuts = separate_clique_cuts(m, point, 8, 1e-4);
    ASSERT_GE(cuts.size(), 1u);
    EXPECT_EQ(cuts[0].rhs, 1.0);
    EXPECT_EQ(cuts[0].expr.terms().size(), 3u);
    EXPECT_GT(cuts[0].violation(point), 1e-4);
    expect_valid_for_integer_hull(m, cuts[0]);
}

TEST(Cuts, RootLoopTightensBoundAndPreservesOptimum) {
    // A knapsack whose LP relaxation is fractional: the cut loop must never
    // weaken the root bound, and the MILP optimum must be identical with the
    // loop on or off (every cut is valid for the integer hull).
    util::SplitMix64 rng(5);
    Model m;
    LinExpr weight, value;
    for (int i = 0; i < 14; ++i) {
        const VarId x = m.add_binary();
        weight += LinExpr::term(x, static_cast<double>(rng.uniform_int(5, 40)));
        value += LinExpr::term(x, static_cast<double>(rng.uniform_int(1, 100)));
    }
    m.add_constraint(weight, Sense::kLe, 80.0);
    m.maximize(value);

    Model with_cuts = m;
    const CutStats stats = run_root_cut_loop(with_cuts, CutOptions{});
    EXPECT_GE(stats.rounds, 1);
    EXPECT_GE(stats.root_bound_after, stats.root_bound_before - kTol);
    EXPECT_GE(with_cuts.constraint_count(), m.constraint_count());

    MilpOptions without;
    without.cut_rounds = 0;
    MilpOptions with;
    with.cut_rounds = 4;
    const MilpResult a = solve_milp(m, without);
    const MilpResult b = solve_milp(m, with);
    ASSERT_EQ(a.status, MilpStatus::kOptimal);
    ASSERT_EQ(b.status, MilpStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective, kTol);
    EXPECT_TRUE(m.is_feasible(b.values, 1e-6));
}

TEST(Cuts, RowRestrictionLimitsSeparationScope) {
    // Two knapsack rows; restricting separation to the first must only
    // produce the first row's cover.
    Model m;
    LinExpr row0, row1;
    const VarId a = m.add_binary("a");
    const VarId b = m.add_binary("b");
    const VarId c = m.add_binary("c");
    const VarId d = m.add_binary("d");
    row0 += LinExpr::term(a, 3.0) + LinExpr::term(b, 3.0);
    row1 += LinExpr::term(c, 3.0) + LinExpr::term(d, 3.0);
    m.add_constraint(row0, Sense::kLe, 5.0, "cap0");
    m.add_constraint(row1, Sense::kLe, 5.0, "cap1");
    m.minimize(LinExpr{});
    const std::vector<double> point{0.9, 0.9, 0.9, 0.9};
    const std::vector<std::size_t> only_first{0};
    const auto all = separate_cover_cuts(m, point, 8, 1e-4);
    const auto restricted = separate_cover_cuts(m, point, 8, 1e-4, &only_first);
    EXPECT_EQ(all.size(), 2u);
    ASSERT_EQ(restricted.size(), 1u);
    EXPECT_NE(restricted[0].expr.coefficient(a), 0.0);
    EXPECT_EQ(restricted[0].expr.coefficient(c), 0.0);
}

TEST(Cuts, FormulationExposesRowGroups) {
    // The recorded capacity group must point at the cap_*/large_* rows the
    // separators feed on, and the assignment group at the Σ L = 1 rows.
    tdg::Tdg t;
    for (const char* n : {"a", "b", "c"}) {
        t.add_node(tdg::Mat(n, {tdg::header_field(std::string("h_") + n, 2)},
                            {tdg::Action{"act", {tdg::metadata_field(
                                                    std::string("m_") + n, 4)}}},
                            16, 1.0));
    }
    t.add_edge(0, 1, tdg::DepType::kMatch);
    t.edges().back().metadata_bytes = 1;
    t.add_edge(1, 2, tdg::DepType::kMatch);
    t.edges().back().metadata_bytes = 4;
    sim::TestbedConfig config;
    config.switch_count = 2;
    config.stages = 2;
    const net::Network n = sim::make_testbed(config);
    core::P1Formulation f(t, n, core::FormulationOptions{});
    const auto& groups = f.row_groups();
    const Model& m = f.model();

    ASSERT_EQ(groups.assignment.size(), f.unit_count());
    for (const std::size_t row : groups.assignment) {
        ASSERT_LT(row, m.constraint_count());
        EXPECT_EQ(m.constraints()[row].sense, Sense::kEq);
        EXPECT_DOUBLE_EQ(m.constraints()[row].rhs, 1.0);
    }
    ASSERT_FALSE(groups.capacity.empty());
    for (const std::size_t row : groups.capacity) {
        ASSERT_LT(row, m.constraint_count());
        EXPECT_EQ(m.constraints()[row].sense, Sense::kLe);
        EXPECT_EQ(m.constraints()[row].name.rfind("cut_", 0), std::string::npos);
    }
    ASSERT_FALSE(groups.amax.empty());
    for (const std::size_t row : groups.amax) {
        ASSERT_LT(row, m.constraint_count());
        EXPECT_EQ(m.constraints()[row].sense, Sense::kGe);
    }
    ASSERT_FALSE(groups.coupling.empty());
    for (const std::size_t row : groups.coupling) {
        ASSERT_LT(row, m.constraint_count());
        EXPECT_EQ(m.constraints()[row].sense, Sense::kEq);
        EXPECT_DOUBLE_EQ(m.constraints()[row].rhs, 0.0);
    }
}

TEST(Branching, PseudocostSelectPrefersObservedGains) {
    // Variable 1 has a large recorded per-unit gain in both directions;
    // variable 0's history is flat. At an equally fractional point the
    // product rule must pick variable 1.
    PseudocostTable table(3);
    table.record(0, /*up=*/true, 0.5, 0.01);
    table.record(0, /*up=*/false, 0.5, 0.01);
    table.record(1, /*up=*/true, 0.5, 5.0);
    table.record(1, /*up=*/false, 0.5, 4.0);
    Model m;
    for (int i = 0; i < 3; ++i) m.add_binary();
    m.minimize(LinExpr{});
    const std::vector<double> point{0.5, 0.5, 0.0};
    const std::optional<VarId> pick = table.select(m, point, 1e-6);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1);
}

TEST(Branching, SelectBreaksTiesOnLowestId) {
    // No history at all: every fractional candidate scores identically via
    // the table-average fallback, so the lowest id must win — this is the
    // determinism the parallel search relies on.
    PseudocostTable table(4);
    Model m;
    for (int i = 0; i < 4; ++i) m.add_binary();
    m.minimize(LinExpr{});
    const std::vector<double> point{0.0, 0.5, 0.5, 0.5};
    const std::optional<VarId> pick = table.select(m, point, 1e-6);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1);
}

TEST(Branching, SelectReturnsNulloptOnIntegerPoint) {
    PseudocostTable table(2);
    Model m;
    m.add_binary();
    m.add_binary();
    m.minimize(LinExpr{});
    EXPECT_FALSE(table.select(m, {1.0, 0.0}, 1e-6).has_value());
}

TEST(Branching, EstimateAveragesRecordedGains) {
    PseudocostTable table(1);
    table.record(0, /*up=*/true, 0.5, 2.0);   // 4 per unit
    table.record(0, /*up=*/true, 0.25, 3.0);  // 12 per unit
    EXPECT_NEAR(table.estimate(0, true), 8.0, kTol);
    EXPECT_EQ(table.observations(0, true), 2);
    EXPECT_EQ(table.observations(0, false), 0);
}

TEST(Branching, PseudocostOnAndOffAgreeOnRandomMilps) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        util::SplitMix64 rng(seed);
        Model m;
        std::vector<VarId> xs;
        for (int i = 0; i < 12; ++i) xs.push_back(m.add_binary());
        for (int r = 0; r < 6; ++r) {
            LinExpr e;
            for (const VarId x : xs) e += LinExpr::term(x, rng.uniform_real(0.1, 2.0));
            m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(2.0, 8.0));
        }
        LinExpr obj;
        for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(0.5, 3.0));
        m.maximize(std::move(obj));

        MilpOptions on;
        MilpOptions off = on;
        off.pseudocost_branching = false;
        const MilpResult a = solve_milp(m, on);
        const MilpResult b = solve_milp(m, off);
        ASSERT_EQ(a.status, b.status) << "seed " << seed;
        if (!a.has_solution()) continue;
        EXPECT_NEAR(a.objective, b.objective, kTol) << "seed " << seed;
        EXPECT_TRUE(m.is_feasible(a.values, 1e-6)) << "seed " << seed;
    }
}

}  // namespace
}  // namespace hermes::milp
