// LP solver tests: known-optimum problems, infeasibility, unboundedness,
// bound handling, and degenerate cases.
#include <gtest/gtest.h>

#include "milp/simplex.h"

namespace hermes::milp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TrivialBoundsOnlyMinimum) {
    Model m;
    const VarId x = m.add_continuous(2.0, 10.0, "x");
    m.minimize(LinExpr::term(x));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 2.0, kTol);
    EXPECT_NEAR(r.values[static_cast<std::size_t>(x)], 2.0, kTol);
}

TEST(Simplex, TrivialBoundsOnlyMaximum) {
    Model m;
    const VarId x = m.add_continuous(2.0, 10.0, "x");
    m.maximize(LinExpr::term(x));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 10.0, kTol);
}

TEST(Simplex, ClassicTwoVariableMax) {
    // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
    Model m;
    const VarId x = m.add_continuous(0.0, kInfinity, "x");
    const VarId y = m.add_continuous(0.0, kInfinity, "y");
    m.add_constraint(LinExpr::term(x), Sense::kLe, 4.0);
    m.add_constraint(LinExpr::term(y, 2.0), Sense::kLe, 12.0);
    m.add_constraint(LinExpr::term(x, 3.0) + LinExpr::term(y, 2.0), Sense::kLe, 18.0);
    m.maximize(LinExpr::term(x, 3.0) + LinExpr::term(y, 5.0));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 36.0, kTol);
    EXPECT_NEAR(r.values[static_cast<std::size_t>(x)], 2.0, kTol);
    EXPECT_NEAR(r.values[static_cast<std::size_t>(y)], 6.0, kTol);
}

TEST(Simplex, EqualityConstraint) {
    // min x + y st x + y = 5, x - y >= 1 -> obj 5.
    Model m;
    const VarId x = m.add_continuous(0.0, kInfinity, "x");
    const VarId y = m.add_continuous(0.0, kInfinity, "y");
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kEq, 5.0);
    m.add_constraint(LinExpr::term(x) - LinExpr::term(y), Sense::kGe, 1.0);
    m.minimize(LinExpr::term(x) + LinExpr::term(y));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 5.0, kTol);
}

TEST(Simplex, GreaterEqualNeedsPhase1) {
    // min 2x + 3y st x + y >= 10, x <= 6 -> x=6, y=4, obj=24.
    Model m;
    const VarId x = m.add_continuous(0.0, 6.0, "x");
    const VarId y = m.add_continuous(0.0, kInfinity, "y");
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kGe, 10.0);
    m.minimize(LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 24.0, kTol);
}

TEST(Simplex, InfeasibleDetected) {
    Model m;
    const VarId x = m.add_continuous(0.0, 1.0, "x");
    m.add_constraint(LinExpr::term(x), Sense::kGe, 2.0);
    m.minimize(LinExpr::term(x));
    EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, ContradictoryConstraintsInfeasible) {
    Model m;
    const VarId x = m.add_continuous(0.0, kInfinity, "x");
    const VarId y = m.add_continuous(0.0, kInfinity, "y");
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kLe, 1.0);
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kGe, 3.0);
    m.minimize(LinExpr::term(x));
    EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
    Model m;
    const VarId x = m.add_continuous(0.0, kInfinity, "x");
    m.maximize(LinExpr::term(x));
    EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, UnboundedWithConstraint) {
    // max x - y st x - y <= ... none binding the ray.
    Model m;
    const VarId x = m.add_continuous(0.0, kInfinity, "x");
    const VarId y = m.add_continuous(0.0, kInfinity, "y");
    m.add_constraint(LinExpr::term(y), Sense::kLe, 5.0);
    m.maximize(LinExpr::term(x) + LinExpr::term(y));
    EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeLowerBoundsShifted) {
    // min x st x >= -5 (bound), x >= -3 (constraint) -> -3.
    Model m;
    const VarId x = m.add_continuous(-5.0, 5.0, "x");
    m.add_constraint(LinExpr::term(x), Sense::kGe, -3.0);
    m.minimize(LinExpr::term(x));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, -3.0, kTol);
}

TEST(Simplex, FreeLowerBoundRejected) {
    Model m;
    (void)m.add_continuous(-kInfinity, 5.0, "x");
    m.minimize(LinExpr{0.0});
    EXPECT_THROW((void)solve_lp(m), std::invalid_argument);
}

TEST(Simplex, ObjectiveConstantFolded) {
    Model m;
    const VarId x = m.add_continuous(1.0, 2.0, "x");
    LinExpr obj = LinExpr::term(x);
    obj.add_constant(100.0);
    m.minimize(obj);
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 101.0, kTol);
}

TEST(Simplex, FixedVariableViaEqualBounds) {
    Model m;
    const VarId x = m.add_continuous(3.0, 3.0, "x");
    const VarId y = m.add_continuous(0.0, 10.0, "y");
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kGe, 5.0);
    m.minimize(LinExpr::term(y));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.values[static_cast<std::size_t>(y)], 2.0, kTol);
}

TEST(Simplex, DegenerateProblemTerminates) {
    // Classic cycling-prone instance (Beale); Bland fallback must terminate.
    Model m;
    const VarId x1 = m.add_continuous(0.0, kInfinity, "x1");
    const VarId x2 = m.add_continuous(0.0, kInfinity, "x2");
    const VarId x3 = m.add_continuous(0.0, kInfinity, "x3");
    const VarId x4 = m.add_continuous(0.0, kInfinity, "x4");
    m.add_constraint(LinExpr::term(x1, 0.25) + LinExpr::term(x2, -8.0) +
                         LinExpr::term(x3, -1.0) + LinExpr::term(x4, 9.0),
                     Sense::kLe, 0.0);
    m.add_constraint(LinExpr::term(x1, 0.5) + LinExpr::term(x2, -12.0) +
                         LinExpr::term(x3, -0.5) + LinExpr::term(x4, 3.0),
                     Sense::kLe, 0.0);
    m.add_constraint(LinExpr::term(x3), Sense::kLe, 1.0);
    m.maximize(LinExpr::term(x1, 0.75) + LinExpr::term(x2, -20.0) +
               LinExpr::term(x3, 0.5) + LinExpr::term(x4, -6.0));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 1.25, kTol);
}

TEST(Simplex, ChvatalCyclingFixtureTerminates) {
    // Chvátal's textbook cycling LP: every basic feasible solution at the
    // origin is degenerate and largest-coefficient pricing cycles forever
    // under the wrong tie-breaks. The degenerate-run guard must hand pricing
    // over to Bland's rule and terminate at the true optimum x=(1,0,1,0).
    Model m;
    const VarId x1 = m.add_continuous(0.0, kInfinity, "x1");
    const VarId x2 = m.add_continuous(0.0, kInfinity, "x2");
    const VarId x3 = m.add_continuous(0.0, kInfinity, "x3");
    const VarId x4 = m.add_continuous(0.0, kInfinity, "x4");
    m.add_constraint(LinExpr::term(x1, 0.5) + LinExpr::term(x2, -5.5) +
                         LinExpr::term(x3, -2.5) + LinExpr::term(x4, 9.0),
                     Sense::kLe, 0.0);
    m.add_constraint(LinExpr::term(x1, 0.5) + LinExpr::term(x2, -1.5) +
                         LinExpr::term(x3, -0.5) + LinExpr::term(x4, 1.0),
                     Sense::kLe, 0.0);
    m.add_constraint(LinExpr::term(x1), Sense::kLe, 1.0);
    m.maximize(LinExpr::term(x1, 10.0) + LinExpr::term(x2, -57.0) +
               LinExpr::term(x3, -9.0) + LinExpr::term(x4, -24.0));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 1.0, kTol);
    EXPECT_NEAR(r.values[static_cast<std::size_t>(x1)], 1.0, kTol);
    EXPECT_NEAR(r.values[static_cast<std::size_t>(x3)], 1.0, kTol);
    // Termination came from the guard, not from exhausting the budget.
    EXPECT_LT(r.iterations, 10000);
}

TEST(Simplex, RedundantEqualityRows) {
    Model m;
    const VarId x = m.add_continuous(0.0, 10.0, "x");
    m.add_constraint(LinExpr::term(x), Sense::kEq, 4.0);
    m.add_constraint(LinExpr::term(x, 2.0), Sense::kEq, 8.0);  // same info
    m.minimize(LinExpr::term(x));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 4.0, kTol);
}

TEST(Simplex, ManyVariablesTransportlike) {
    // Balanced 3x3 transportation problem with known optimum.
    // Supplies: 20, 30, 25; demands: 10, 35, 30.
    const double cost[3][3] = {{8, 6, 10}, {9, 12, 13}, {14, 9, 16}};
    const double supply[3] = {20, 30, 25};
    const double demand[3] = {10, 35, 30};
    Model m;
    VarId x[3][3];
    LinExpr obj;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            x[i][j] = m.add_continuous(0.0, kInfinity,
                                       "x" + std::to_string(i) + std::to_string(j));
            obj += LinExpr::term(x[i][j], cost[i][j]);
        }
    }
    for (int i = 0; i < 3; ++i) {
        LinExpr row;
        for (int j = 0; j < 3; ++j) row += LinExpr::term(x[i][j]);
        m.add_constraint(std::move(row), Sense::kEq, supply[i]);
    }
    for (int j = 0; j < 3; ++j) {
        LinExpr col;
        for (int i = 0; i < 3; ++i) col += LinExpr::term(x[i][j]);
        m.add_constraint(std::move(col), Sense::kEq, demand[j]);
    }
    m.minimize(obj);
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    // Brute-force-verified optimum (exhaustive integer enumeration): 735.
    EXPECT_NEAR(r.objective, 735.0, 1e-4);
}

TEST(Simplex, SolutionSatisfiesModel) {
    Model m;
    const VarId x = m.add_continuous(0.0, 7.0, "x");
    const VarId y = m.add_continuous(0.0, 7.0, "y");
    m.add_constraint(LinExpr::term(x, 2.0) + LinExpr::term(y), Sense::kLe, 9.0);
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y, 3.0), Sense::kGe, 6.0);
    m.maximize(LinExpr::term(x) + LinExpr::term(y, 2.0));
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_TRUE(m.is_feasible(r.values, 1e-6));
    EXPECT_NEAR(m.objective_value(r.values), r.objective, kTol);
}

}  // namespace
}  // namespace hermes::milp
