// Warm-start pathology tests for the revised simplex (milp/simplex.h): a
// repaired parent basis that went primal-infeasible after a bound flip, the
// pivot-budget abandon to the cold path, warm-certified infeasibility, and
// the solver-level guarantee that warm observability counters are flushed
// even when a search aborts through a Deadline token.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "core/deadline.h"
#include "milp/simplex.h"
#include "milp/solver.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace hermes::milp {
namespace {

constexpr double kTol = 1e-6;

// Bounded feasible LP with enough coupling that tightening one variable's
// bound disturbs several rows of the optimal basis.
Model coupled_lp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < vars; ++i) xs.push_back(m.add_continuous(0.0, 10.0));
    for (int r = 0; r < rows; ++r) {
        LinExpr e;
        for (const VarId x : xs) e += LinExpr::term(x, rng.uniform_real(0.1, 2.0));
        m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(5.0, 50.0));
    }
    LinExpr obj;
    for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(0.5, 3.0));
    m.maximize(std::move(obj));
    return m;
}

TEST(WarmStart, RepairedBasisPrimalInfeasibleAfterBoundFlip) {
    // Branch-and-bound's canonical warm start: the parent's optimal basis is
    // reloaded after a bound tightened past the basic value, so the reloaded
    // point starts primal-infeasible and phase 1 must repair it. The repaired
    // solve must agree with a cold solve of the same bounds exactly.
    const Model m = coupled_lp(12, 9, 21);
    const LpContext context(m);
    std::vector<double> lower = context.model_lower();
    std::vector<double> upper = context.model_upper();
    LpOptions cold_options;
    const LpResult parent = context.solve(lower, upper, cold_options);
    ASSERT_EQ(parent.status, LpStatus::kOptimal);

    // Flip the bound of the largest basic variable below its optimal value.
    std::size_t j = 0;
    for (std::size_t i = 1; i < parent.values.size(); ++i) {
        if (parent.values[i] > parent.values[j]) j = i;
    }
    ASSERT_GT(parent.values[j], 0.5);
    upper[j] = parent.values[j] / 2.0;

    const LpResult cold = context.solve(lower, upper, cold_options);
    LpOptions warm_options;
    warm_options.warm_basis = &parent.basis;
    const LpResult warm = context.solve(lower, upper, warm_options);
    ASSERT_EQ(cold.status, LpStatus::kOptimal);
    ASSERT_EQ(warm.status, LpStatus::kOptimal);
    EXPECT_NEAR(warm.objective, cold.objective, kTol * (1.0 + std::abs(cold.objective)));
    EXPECT_TRUE(m.is_feasible(warm.values, 1e-5));
    EXPECT_LE(warm.values[j], upper[j] + 1e-7);
}

TEST(WarmStart, AbandonsToColdUnderPivotBudget) {
    // With a one-pivot budget a repair that needs several pivots must give
    // up and fall back to the cold path — same answer, warm attempt counted
    // as a miss with the budget as the recorded abandon reason.
    const Model m = coupled_lp(14, 10, 33);
    const LpContext context(m);
    std::vector<double> lower = context.model_lower();
    std::vector<double> upper = context.model_upper();
    const LpResult parent = context.solve(lower, upper);
    ASSERT_EQ(parent.status, LpStatus::kOptimal);

    // Tighten every nonzero basic variable: the repair now needs at least
    // one pivot per disturbed column, far beyond the budget.
    int disturbed = 0;
    for (std::size_t i = 0; i < parent.values.size(); ++i) {
        if (parent.values[i] > 0.5) {
            upper[i] = parent.values[i] / 2.0;
            ++disturbed;
        }
    }
    ASSERT_GE(disturbed, 2);

    const LpResult cold = context.solve(lower, upper);
    LpOptions warm_options;
    warm_options.warm_basis = &parent.basis;
    warm_options.warm_pivot_budget = 1;
    const LpResult budgeted = context.solve(lower, upper, warm_options);
    ASSERT_EQ(budgeted.status, cold.status);
    ASSERT_EQ(budgeted.status, LpStatus::kOptimal);
    EXPECT_NEAR(budgeted.objective, cold.objective,
                kTol * (1.0 + std::abs(cold.objective)));
    EXPECT_FALSE(budgeted.warm_used);
    EXPECT_NE(budgeted.warm_abandon, WarmAbandon::kNone);

    // An unconstrained budget lets the same warm attempt survive.
    warm_options.warm_pivot_budget = 200000;
    const LpResult roomy = context.solve(lower, upper, warm_options);
    ASSERT_EQ(roomy.status, LpStatus::kOptimal);
    EXPECT_NEAR(roomy.objective, cold.objective,
                kTol * (1.0 + std::abs(cold.objective)));
}

TEST(WarmStart, CertifiedInfeasibilityCountsAsHit) {
    // A warm attempt may prove the child LP infeasible directly (phase-1
    // optimum > 0, confirmed on a rebuilt factorization). That proof is a
    // warm hit: no cold solve runs and no waste is charged.
    Model m;
    const VarId x = m.add_continuous(0.0, 10.0, "x");
    const VarId y = m.add_continuous(0.0, 10.0, "y");
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kGe, 5.0);
    m.minimize(LinExpr::term(x) + LinExpr::term(y, 2.0));
    const LpContext context(m);
    std::vector<double> lower = context.model_lower();
    std::vector<double> upper = context.model_upper();
    const LpResult parent = context.solve(lower, upper);
    ASSERT_EQ(parent.status, LpStatus::kOptimal);

    upper[0] = 1.0;
    upper[1] = 1.0;  // x + y <= 2 < 5: infeasible
    LpOptions warm_options;
    warm_options.warm_basis = &parent.basis;
    const LpResult warm = context.solve(lower, upper, warm_options);
    EXPECT_EQ(warm.status, LpStatus::kInfeasible);
    EXPECT_TRUE(warm.warm_used);
    EXPECT_EQ(warm.warm_wasted_iterations, 0);
}

TEST(WarmStart, DeadlineAbortStillFlushesWarmCounters) {
    // A search cancelled mid-run through its Deadline token must still flush
    // the per-worker lp.warm_* counters on the abort path (the RAII flush in
    // the worker), not only on clean exits.
    util::SplitMix64 rng(99);
    Model m;
    LinExpr weight, value;
    for (int i = 0; i < 24; ++i) {
        const VarId x = m.add_binary();
        weight += LinExpr::term(x, static_cast<double>(rng.uniform_int(5, 40)));
        value += LinExpr::term(x, static_cast<double>(rng.uniform_int(1, 100)));
    }
    m.add_constraint(weight, Sense::kLe, 120.0);
    m.maximize(value);

    obs::Sink sink;
    MilpOptions options;
    options.sink = &sink;
    options.threads = 1;
    options.presolve = false;
    options.deadline = core::Deadline::cancellable();
    std::thread canceller([&options] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        options.deadline.cancel();
    });
    const MilpResult r = solve_milp(m, options);
    canceller.join();
    EXPECT_TRUE(r.status == MilpStatus::kTimeLimit ||
                r.status == MilpStatus::kOptimal);

    std::int64_t attempts = -1, hits = -1;
    for (const auto& c : sink.counters()) {
        if (c.name == "lp.warm_attempts") attempts = c.value;
        if (c.name == "lp.warm_hits") hits = c.value;
    }
    // Both counters must exist even on the abort path; on this instance the
    // search always opens enough nodes before the cancel to attempt warm
    // starts.
    ASSERT_GE(attempts, 0);
    ASSERT_GE(hits, 0);
    EXPECT_LE(hits, attempts);
}

}  // namespace
}  // namespace hermes::milp
