// obs subsystem tests: span recording across threads (exercised under TSan
// in CI), counter/histogram correctness under concurrent updates, exporter
// golden output pinned via the set_epoch_ns / record_span test seams, and a
// sanity bound on the disabled-sink span cost.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/obs.h"

namespace hermes::obs {
namespace {

TEST(ObsSpan, RecordsStartEndAndName) {
    Sink sink;
    {
        Span span(&sink, "phase");
    }
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "phase");
    EXPECT_GE(events[0].end_ns, events[0].start_ns);
}

TEST(ObsSpan, EndIsIdempotent) {
    Sink sink;
    Span span(&sink, "once");
    span.end();
    span.end();
    EXPECT_EQ(sink.events().size(), 1u);
}

TEST(ObsSpan, NullSinkRecordsNothing) {
    Span span(nullptr, "noop");
    span.end();  // must not crash; nothing to flush anywhere
}

TEST(ObsSpan, NestedSpansAreContained) {
    Sink sink;
    {
        Span outer(&sink, "outer");
        Span inner(&sink, "inner");
    }
    const auto events = sink.events();  // sorted by (start, tid)
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_LE(events[0].start_ns, events[1].start_ns);
    EXPECT_GE(events[0].end_ns, events[1].end_ns);
    EXPECT_EQ(events[0].tid, events[1].tid);
}

// Several threads record nested spans concurrently; after the join, every
// thread's lane must hold its own well-nested, correctly ordered spans.
// This is the test TSan watches for races between the lock-free per-thread
// appends and the registration/flush paths.
TEST(ObsSpan, ThreadsGetPrivateOrderedLanes) {
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 100;
    Sink sink;
    Counter& total = sink.counter("total");
    std::vector<std::thread> pool;
    for (int w = 0; w < kThreads; ++w) {
        pool.emplace_back([&sink, &total, w] {
            sink.name_thread("worker." + std::to_string(w));
            for (int k = 0; k < kSpansPerThread; ++k) {
                Span outer(&sink, "outer");
                Span inner(&sink, "inner");
                total.add(1);
            }
        });
    }
    for (std::thread& t : pool) t.join();

    EXPECT_EQ(total.value(), kThreads * kSpansPerThread);
    const auto events = sink.events();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(2 * kThreads * kSpansPerThread));

    std::set<std::uint32_t> tids;
    for (const TraceEvent& e : events) tids.insert(e.tid);
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
    const auto names = sink.thread_names();
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kThreads));
    for (const std::uint32_t tid : tids) EXPECT_EQ(names.count(tid), 1u);

    // Per lane: equal outer/inner counts, and (events being start-sorted)
    // the j-th inner nests inside the j-th outer.
    for (const std::uint32_t tid : tids) {
        std::vector<const TraceEvent*> outers;
        std::vector<const TraceEvent*> inners;
        for (const TraceEvent& e : events) {
            if (e.tid != tid) continue;
            (std::string_view(e.name) == "outer" ? outers : inners).push_back(&e);
        }
        ASSERT_EQ(outers.size(), static_cast<std::size_t>(kSpansPerThread));
        ASSERT_EQ(inners.size(), static_cast<std::size_t>(kSpansPerThread));
        for (int j = 0; j < kSpansPerThread; ++j) {
            EXPECT_LE(outers[j]->start_ns, inners[j]->start_ns);
            EXPECT_GE(outers[j]->end_ns, inners[j]->end_ns);
        }
    }
}

TEST(ObsCounter, ReferencesAreStableAndShared) {
    Sink sink;
    Counter& a = sink.counter("x");
    a.add(2);
    sink.counter("x").add(3);
    EXPECT_EQ(&a, &sink.counter("x"));
    EXPECT_EQ(a.value(), 5);
}

TEST(ObsCounter, ConcurrentAddsDontLoseUpdates) {
    constexpr int kThreads = 8;
    constexpr int kAdds = 50'000;
    Sink sink;
    Counter& c = sink.counter("hits");
    std::vector<std::thread> pool;
    for (int w = 0; w < kThreads; ++w) {
        pool.emplace_back([&c] {
            for (int k = 0; k < kAdds; ++k) c.add(1);
        });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kAdds);
}

TEST(ObsHistogram, BucketsAreInclusiveUpperBoundsPlusOverflow) {
    Sink sink;
    Histogram& h = sink.histogram("lat", {1.0, 10.0, 100.0});
    for (const double v : {0.5, 1.0, 5.0, 10.0, 50.0, 1000.0}) h.observe(v);
    EXPECT_EQ(h.counts(), (std::vector<std::int64_t>{2, 2, 1, 1}));
    EXPECT_EQ(h.count(), 6);
    EXPECT_DOUBLE_EQ(h.sum(), 1066.5);
}

TEST(ObsHistogram, ConcurrentObservesKeepCountAndSumConsistent) {
    constexpr int kThreads = 4;
    constexpr int kObserves = 20'000;
    Sink sink;
    Histogram& h = sink.histogram("v", {0.5, 1.5});
    std::vector<std::thread> pool;
    for (int w = 0; w < kThreads; ++w) {
        pool.emplace_back([&h] {
            for (int k = 0; k < kObserves; ++k) h.observe(static_cast<double>(k % 3));
        });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(h.count(), kThreads * kObserves);
    // Per thread: residues 0/1/2 appear 6667/6667/6666 times, sum 19999.
    EXPECT_EQ(h.counts(),
              (std::vector<std::int64_t>{4 * 6667, 4 * 6667, 4 * 6666}));
    EXPECT_DOUBLE_EQ(h.sum(), 4.0 * 19999.0);
}

TEST(ObsHistogram, GeometricBounds) {
    const std::vector<double> bounds = geometric_bounds(1.0, 4.0, 4);
    EXPECT_EQ(bounds, (std::vector<double>{1.0, 4.0, 16.0, 64.0}));
}

TEST(ObsHistogram, QuantileOfEmptyHistogramIsZero) {
    Sink sink;
    Histogram& h = sink.histogram("empty", {1.0, 10.0});
    for (const double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(h.quantile(q), 0.0) << "q=" << q;
    }
}

TEST(ObsHistogram, QuantileOfSingleSampleInterpolatesItsBucket) {
    Sink sink;
    Histogram& h = sink.histogram("single", {10.0, 20.0});
    h.observe(15.0);  // lands in the (10, 20] bucket
    // One sample: every quantile resolves inside that bucket, linearly
    // between its bounds.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
    // Out-of-range q is clamped, not undefined.
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(ObsHistogram, QuantileWithAllSamplesInOneBucket) {
    Sink sink;
    Histogram& h = sink.histogram("onebucket", {1.0, 2.0, 4.0});
    for (int i = 0; i < 100; ++i) h.observe(1.5);  // all in (1, 2]
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.25);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.99);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(ObsHistogram, QuantileInOverflowBucketReturnsLastBound) {
    Sink sink;
    Histogram& h = sink.histogram("overflow", {1.0, 2.0});
    h.observe(100.0);  // past every bound: the unbounded overflow bucket
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(ObsExport, ChromeTraceGolden) {
    Sink sink;
    sink.set_epoch_ns(1000);
    sink.name_thread("main");
    sink.record_span("alpha", 1000, 3500);
    sink.record_span("beta", 2000, 2250);
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 2u);
    // Lane ids are process-global, so the golden string interpolates the
    // actual tid instead of assuming this test ran first.
    const std::string tid = std::to_string(events[0].tid);
    std::ostringstream os;
    write_chrome_trace(sink, os);
    const std::string expected =
        "[\n{\"ph\":\"M\",\"pid\":1,\"tid\":" + tid +
        ",\"name\":\"thread_name\",\"args\":{\"name\":\"main\"}},"
        "\n{\"ph\":\"X\",\"pid\":1,\"tid\":" + tid +
        ",\"name\":\"alpha\",\"ts\":0.000,\"dur\":2.500},"
        "\n{\"ph\":\"X\",\"pid\":1,\"tid\":" + tid +
        ",\"name\":\"beta\",\"ts\":1.000,\"dur\":0.250}"
        "\n]\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(ObsExport, MetricsJsonGolden) {
    Sink sink;
    sink.counter("zeta").add(3);
    sink.counter("alpha").add(1);
    Histogram& h = sink.histogram("lat", {1.0, 2.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0);
    std::ostringstream os;
    write_metrics_json(sink, os);
    const std::string expected =
        "{\n"
        "  \"counters\": {\n"
        "    \"alpha\": 1,\n"
        "    \"zeta\": 3\n"
        "  },\n"
        "  \"histograms\": {\n"
        "    \"lat\": {\"bounds\": [1, 2], \"counts\": [1, 1, 1], "
        "\"count\": 3, \"sum\": 11}\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(ObsExport, EmptySinkProducesValidDocuments) {
    Sink sink;
    std::ostringstream trace;
    write_chrome_trace(sink, trace);
    EXPECT_EQ(trace.str(), "[\n]\n");
    std::ostringstream metrics;
    write_metrics_json(sink, metrics);
    EXPECT_EQ(metrics.str(), "{\n  \"counters\": {},\n  \"histograms\": {}\n}\n");
}

// The disabled-sink span path must stay trivially cheap: no clock read, no
// lock, no allocation. The bound is deliberately loose (it holds under
// TSan/ASan too); a real regression — taking a lock or reading the clock —
// blows way past it.
TEST(ObsSpan, DisabledSinkIsCheap) {
    constexpr int kIterations = 1'000'000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIterations; ++i) {
        Span span(nullptr, "noop");
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(seconds, 2.0);
}

}  // namespace
}  // namespace hermes::obs
