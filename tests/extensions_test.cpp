// Tests for the extension modules: exact DP chain segmentation, the
// ε-tradeoff explorer, and incremental redeployment.
#include <gtest/gtest.h>

#include <numeric>

#include "core/dp_split.h"
#include "core/greedy.h"
#include "core/hermes.h"
#include "core/incremental.h"
#include "core/objective.h"
#include "core/tradeoff.h"
#include "core/verifier.h"
#include "prog/library.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"

namespace hermes::core {
namespace {

using tdg::DepType;
using tdg::NodeId;

tdg::Mat mat(const std::string& name, double resource) {
    return tdg::Mat(name, {tdg::header_field("h_" + name, 2)},
                    {tdg::Action{"a", {tdg::metadata_field("m_" + name, 4)}}}, 16,
                    resource);
}

// The Fig 4 instance again: known optimal max-cut 4 for 2-MAT switches.
tdg::Tdg fig4() {
    tdg::Tdg t;
    for (const char* n : {"a", "b", "c", "d", "e"}) t.add_node(mat(n, 1.0));
    auto edge = [&](NodeId f, NodeId to, int bytes) {
        t.add_edge(f, to, DepType::kMatch);
        t.edges().back().metadata_bytes = bytes;
    };
    edge(0, 1, 2);
    edge(0, 2, 2);
    edge(1, 2, 5);
    edge(2, 3, 1);
    edge(2, 4, 2);
    edge(3, 4, 2);
    return t;
}

// ---- boundary_cuts / dp_split -------------------------------------------------

TEST(DpSplit, BoundaryCutsMatchManualComputation) {
    const tdg::Tdg t = fig4();
    const auto cuts = boundary_cuts(t);
    ASSERT_EQ(cuts.size(), 6u);
    EXPECT_EQ(cuts[0], 0);
    EXPECT_EQ(cuts[1], 4);   // a | bcde: a->b + a->c
    EXPECT_EQ(cuts[2], 7);   // ab | cde: a->c (2) + b->c (5)
    EXPECT_EQ(cuts[3], 3);   // abc | de: c->d + c->e
    EXPECT_EQ(cuts[4], 4);   // abcd | e: c->e + d->e
    EXPECT_EQ(cuts[5], 0);
}

TEST(DpSplit, Figure4Optimal) {
    const tdg::Tdg t = fig4();
    const DpSplitResult r = dp_split(t, 2, 1.0);
    EXPECT_EQ(r.max_cut_bytes, 4);  // ties exist; the objective is what matters
    std::size_t covered = 0;
    for (const auto& segment : r.segments) {
        EXPECT_TRUE(segment_fits(t, segment, 2, 1.0));
        covered += segment.size();
    }
    EXPECT_EQ(covered, t.node_count());
}

TEST(DpSplit, SingleSegmentWhenEverythingFits) {
    const tdg::Tdg t = fig4();
    const DpSplitResult r = dp_split(t, 12, 1.0);
    EXPECT_EQ(r.segments.size(), 1u);
    EXPECT_EQ(r.max_cut_bytes, 0);
}

TEST(DpSplit, OversizedMatThrows) {
    tdg::Tdg t;
    t.add_node(mat("huge", 5.0));
    EXPECT_THROW((void)dp_split(t, 2, 1.0), std::runtime_error);
}

TEST(DpSplit, NeverWorseThanRecursiveGreedy) {
    // The DP optimum over contiguous segmentations bounds the greedy result
    // on the same instance family.
    for (const std::uint64_t seed : {3u, 7u, 11u, 19u}) {
        prog::SyntheticConfig config;
        const tdg::Tdg t = core::analyze(
            {prog::synthetic_program(config, seed, 0),
             prog::synthetic_program(config, seed, 1)});
        std::vector<NodeId> all(t.node_count());
        std::iota(all.begin(), all.end(), NodeId{0});
        const auto greedy_segments = split_tdg(t, all, 12, 1.0);
        const DpSplitResult dp = dp_split(t, 12, 1.0);

        // Greedy max-cut across its boundaries, via boundary_cuts.
        const auto cuts = boundary_cuts(t);
        std::int64_t greedy_max = 0;
        std::size_t position = 0;
        for (std::size_t i = 0; i + 1 < greedy_segments.size(); ++i) {
            position += greedy_segments[i].size();
            greedy_max = std::max(greedy_max, cuts[position]);
        }
        EXPECT_LE(dp.max_cut_bytes, greedy_max) << "seed " << seed;
        EXPECT_LE(dp.segments.size(), all.size());
    }
}

TEST(DpSplit, SegmentsDeployAndVerify) {
    const tdg::Tdg t = fig4();
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 2;
    const net::Network n = sim::make_testbed(config);
    const DpSplitResult r = dp_split(t, config.stages, config.stage_capacity);
    const GreedyResult deployed = deploy_segments_on_chain(t, n, r.segments, {});
    EXPECT_TRUE(verify(t, n, deployed.deployment).ok);
    EXPECT_EQ(max_inflight_metadata(t, n, deployed.deployment), r.max_cut_bytes);
}

// ---- Tradeoff sweeps -----------------------------------------------------------

TEST(Tradeoff, SwitchBudgetSweepMonotoneFeasibility) {
    const tdg::Tdg t = core::analyze(prog::real_programs());
    sim::TestbedConfig config;
    config.switch_count = 6;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    const auto sweep = sweep_switch_budget(t, n, 1, 6);
    ASSERT_EQ(sweep.size(), 6u);
    // Feasibility is monotone in the budget.
    bool seen_feasible = false;
    for (const TradeoffPoint& p : sweep) {
        if (seen_feasible) EXPECT_TRUE(p.feasible) << p.epsilon2;
        seen_feasible = seen_feasible || p.feasible;
        if (p.feasible) EXPECT_LE(p.metrics.occupied_switches, p.epsilon2);
    }
    EXPECT_TRUE(seen_feasible);
}

TEST(Tradeoff, LatencyBudgetSweep) {
    const tdg::Tdg t = core::analyze(prog::real_programs());
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 4;
    config.link_latency_us = 10.0;
    const net::Network n = sim::make_testbed(config);
    const auto sweep = sweep_latency_budget(t, n, 0.0, 200.0, 5);
    ASSERT_EQ(sweep.size(), 5u);
    EXPECT_FALSE(sweep.front().feasible);  // zero latency budget, multi-switch need
    EXPECT_TRUE(sweep.back().feasible);
}

TEST(Tradeoff, KneePointPicksTightestGoodBudget) {
    std::vector<TradeoffPoint> sweep(4);
    sweep[0].feasible = false;
    sweep[1].feasible = true;
    sweep[1].metrics.max_pair_metadata_bytes = 20;
    sweep[2].feasible = true;
    sweep[2].metrics.max_pair_metadata_bytes = 10;
    sweep[3].feasible = true;
    sweep[3].metrics.max_pair_metadata_bytes = 10;
    const auto knee = knee_point(sweep, 0.05);
    ASSERT_TRUE(knee.has_value());
    EXPECT_EQ(knee->metrics.max_pair_metadata_bytes, 10);
    EXPECT_FALSE(knee_point({}, 0.05).has_value());
}

TEST(Tradeoff, Validation) {
    const tdg::Tdg t = core::analyze({prog::make_program("nat")});
    const net::Network n = sim::make_testbed();
    EXPECT_THROW((void)sweep_switch_budget(t, n, 0, 3), std::invalid_argument);
    EXPECT_THROW((void)sweep_switch_budget(t, n, 3, 2), std::invalid_argument);
    EXPECT_THROW((void)sweep_latency_budget(t, n, 0, 10, 1), std::invalid_argument);
}

// ---- Incremental redeployment -----------------------------------------------------

TEST(Incremental, AddsProgramsWithoutMovingExisting) {
    const std::vector<prog::Program> base_programs = {prog::make_program("l2l3_routing"),
                                                      prog::make_program("acl_firewall")};
    const tdg::Tdg base = core::analyze(base_programs);
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    const Deployment existing = try_deploy_greedy(base, n).value().deployment;

    const tdg::Tdg combined =
        extend_programs(base, {prog::make_program("countmin_sketch")});
    ASSERT_GT(combined.node_count(), base.node_count());
    const auto result = incremental_deploy(combined, base.node_count(), existing, n);
    ASSERT_TRUE(result.has_value());
    // Old placements untouched.
    for (NodeId v = 0; v < base.node_count(); ++v) {
        EXPECT_EQ(result->deployment.placements[v].sw, existing.placements[v].sw);
        EXPECT_EQ(result->deployment.placements[v].stage, existing.placements[v].stage);
    }
    const VerificationReport report = verify(combined, n, result->deployment);
    EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                         : report.violations.front());
    EXPECT_GE(result->added_overhead_bytes, 0);
}

TEST(Incremental, SequenceOfAdditionsStaysVerified) {
    tdg::Tdg current = core::analyze({prog::make_program("nat")});
    sim::TestbedConfig config;
    config.switch_count = 6;
    config.stages = 6;
    const net::Network n = sim::make_testbed(config);
    Deployment deployment = try_deploy_greedy(current, n).value().deployment;

    for (const char* name : {"ecmp_lb", "bloom_filter", "qos_meter"}) {
        const std::size_t base_count = current.node_count();
        const tdg::Tdg combined = extend_programs(current, {prog::make_program(name)});
        const auto result = incremental_deploy(combined, base_count, deployment, n);
        ASSERT_TRUE(result.has_value()) << name;
        deployment = result->deployment;
        current = combined;
        EXPECT_TRUE(verify(current, n, deployment).ok) << name;
    }
}

TEST(Incremental, CapacityExhaustionReturnsNullopt) {
    const tdg::Tdg base = core::analyze({prog::make_program("nat")});
    sim::TestbedConfig config;
    config.switch_count = 1;
    config.stages = 3;
    const net::Network n = sim::make_testbed(config);
    const Deployment existing = try_deploy_greedy(base, n).value().deployment;
    // Ten more sketches cannot fit the remaining space of one switch.
    const tdg::Tdg combined = extend_programs(base, prog::sketch_programs());
    EXPECT_FALSE(incremental_deploy(combined, base.node_count(), existing, n).has_value());
}

TEST(Incremental, ShapeMismatchRejected) {
    const tdg::Tdg base = core::analyze({prog::make_program("nat")});
    const net::Network n = sim::make_testbed();
    Deployment wrong;
    EXPECT_THROW((void)incremental_deploy(base, base.node_count(), wrong, n),
                 std::invalid_argument);
}

TEST(Incremental, CheaperThanItLooks) {
    // The incremental result can cost more overhead than a full redeploy —
    // quantify that both paths verify and the full redeploy is never worse.
    const std::vector<prog::Program> base_programs = {prog::make_program("l2l3_routing"),
                                                      prog::make_program("ecmp_lb")};
    const tdg::Tdg base = core::analyze(base_programs);
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 3;
    const net::Network n = sim::make_testbed(config);
    const Deployment existing = try_deploy_greedy(base, n).value().deployment;
    const tdg::Tdg combined = extend_programs(base, {prog::make_program("flow_stats")});
    const auto incremental = incremental_deploy(combined, base.node_count(), existing, n);
    ASSERT_TRUE(incremental.has_value());
    const Deployment full = try_deploy_greedy(combined, n).value().deployment;
    EXPECT_LE(max_pair_metadata(combined, full),
              max_pair_metadata(combined, incremental->deployment) +
                  max_pair_metadata(base, existing) + 1);
}

}  // namespace
}  // namespace hermes::core
