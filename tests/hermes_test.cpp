// Framework facade tests: analyze -> deploy_greedy / deploy_optimal on real
// program workloads against the paper's testbed topology.
#include <gtest/gtest.h>

#include "core/hermes.h"
#include "core/verifier.h"
#include "prog/library.h"
#include "sim/testbed.h"

namespace hermes::core {
namespace {

std::vector<prog::Program> few_programs(std::size_t count) {
    std::vector<prog::Program> all = prog::real_programs();
    all.erase(all.begin() + static_cast<std::ptrdiff_t>(count), all.end());
    return all;
}

TEST(Hermes, AnalyzeMergesAndAnnotates) {
    const tdg::Tdg t = analyze(prog::real_programs());
    EXPECT_GT(t.node_count(), 10u);
    EXPECT_TRUE(t.is_dag());
    EXPECT_GT(t.total_metadata_bytes(), 0);
    // Merging must be no larger than the plain union.
    std::size_t union_nodes = 0;
    for (const prog::Program& p : prog::real_programs()) union_nodes += p.mat_count();
    EXPECT_LT(t.node_count(), union_nodes);
}

TEST(Hermes, GreedyDeploysRealProgramsOnTestbed) {
    const tdg::Tdg t = analyze(few_programs(4));
    const net::Network n = sim::make_testbed();
    const DeployOutcome outcome = try_deploy_greedy(t, n).value();
    EXPECT_EQ(outcome.solver_status, "greedy");
    EXPECT_GT(outcome.solve_seconds, 0.0);
    const VerificationReport report = verify(t, n, outcome.deployment);
    EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                         : report.violations.front());
    EXPECT_EQ(outcome.metrics.max_pair_metadata_bytes,
              max_pair_metadata(t, outcome.deployment));
}

TEST(Hermes, OptimalNeverWorseThanGreedy) {
    const tdg::Tdg t = analyze(few_programs(3));
    sim::TestbedConfig config;
    config.stages = 3;  // force a multi-switch deployment
    const net::Network n = sim::make_testbed(config);

    const DeployOutcome greedy = try_deploy_greedy(t, n).value();
    HermesOptions options;
    options.milp.time_limit_seconds = 60.0;
    const DeployOutcome optimal = try_deploy_optimal(t, n, options).value();
    EXPECT_LE(optimal.metrics.max_pair_metadata_bytes,
              greedy.metrics.max_pair_metadata_bytes);
    const VerificationReport report = verify(t, n, optimal.deployment);
    EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                         : report.violations.front());
}

TEST(Hermes, OptimalSegmentLevelMode) {
    const tdg::Tdg t = analyze(few_programs(5));
    sim::TestbedConfig config;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    HermesOptions options;
    options.segment_level_milp = true;
    options.milp.time_limit_seconds = 30.0;
    const DeployOutcome outcome = try_deploy_optimal(t, n, options).value();
    EXPECT_TRUE(verify(t, n, outcome.deployment).ok);
}

TEST(Hermes, GreedyInfeasiblePropagates) {
    const tdg::Tdg t = analyze(prog::real_programs());
    sim::TestbedConfig config;
    config.switch_count = 1;
    config.stages = 2;
    const net::Network n = sim::make_testbed(config);
    EXPECT_THROW((void)try_deploy_greedy(t, n).value(), std::runtime_error);
}

TEST(Hermes, EpsilonBoundsForwarded) {
    const tdg::Tdg t = analyze(few_programs(4));
    sim::TestbedConfig config;
    config.stages = 3;
    const net::Network n = sim::make_testbed(config);
    HermesOptions options;
    options.epsilon2 = 1;  // cannot fit on a single switch
    EXPECT_THROW((void)try_deploy_greedy(t, n, options).value(), std::runtime_error);
}

TEST(Hermes, SketchWorkloadZeroOverheadWhenFitting) {
    // Ten sketches merge into a small TDG that fits one Tofino switch:
    // Hermes should then produce a zero-overhead single-switch deployment.
    const tdg::Tdg t = analyze(prog::sketch_programs());
    sim::TestbedConfig config;
    config.stages = 12;
    const net::Network n = sim::make_testbed(config);
    const DeployOutcome outcome = try_deploy_greedy(t, n).value();
    EXPECT_EQ(outcome.metrics.max_pair_metadata_bytes, 0);
    EXPECT_EQ(outcome.metrics.occupied_switches, 1);
}

}  // namespace
}  // namespace hermes::core
