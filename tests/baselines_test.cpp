// Comparison-framework tests: every strategy must produce a verified
// deployment; their characteristic behaviours (packing shapes, objectives,
// metadata-obliviousness) are asserted against Hermes.
#include <gtest/gtest.h>

#include "baselines/common.h"
#include "baselines/single_switch.h"
#include "core/hermes.h"
#include "core/objective.h"
#include "core/verifier.h"
#include "prog/library.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"

namespace hermes::baselines {
namespace {

std::vector<prog::Program> workload(int count) { return prog::paper_workload(count, 7); }

BaselineOptions quick_options() {
    BaselineOptions o;
    o.milp.time_limit_seconds = 5.0;
    o.candidate_limit = 4;
    return o;
}

net::Network pressured_testbed() {
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 6;
    return sim::make_testbed(config);
}

TEST(Baselines, RegistryHasPaperOrder) {
    const auto strategies = all_strategies();
    ASSERT_EQ(strategies.size(), 8u);
    const std::vector<std::string> expected{"MS", "Sonata", "SPEED", "MTP",
                                            "FP", "P4All",  "FFL",   "FFLS"};
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(strategies[i]->name(), expected[i]);
    }
}

TEST(Baselines, EveryStrategyProducesVerifiedDeployment) {
    const auto programs = workload(6);
    const net::Network n = pressured_testbed();
    for (const auto& strategy : all_strategies()) {
        const StrategyOutcome outcome = strategy->deploy(programs, n, quick_options());
        EXPECT_EQ(outcome.deployment.placements.size(), outcome.merged.node_count())
            << strategy->name();
        const core::VerificationReport report =
            core::verify(outcome.merged, n, outcome.deployment);
        EXPECT_TRUE(report.ok)
            << strategy->name() << ": "
            << (report.violations.empty() ? "" : report.violations.front());
        EXPECT_GE(outcome.solve_seconds, 0.0);
        EXPECT_FALSE(outcome.status.empty());
    }
}

TEST(Baselines, UnionKeepsProgramsSeparate) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    const auto programs = workload(4);
    const tdg::Tdg u = union_programs(programs, ranges);
    ASSERT_EQ(ranges.size(), 4u);
    std::size_t total = 0;
    for (const prog::Program& p : programs) total += p.mat_count();
    EXPECT_EQ(u.node_count(), total);  // no dedup in the union
    // Cross-program edges exist only to order shared-field conflicts: both
    // endpoints must touch a common field.
    for (const tdg::Edge& e : u.edges()) {
        bool same_program = false;
        for (const auto& [b, eend] : ranges) {
            if (e.from >= b && e.from < eend) same_program = e.to >= b && e.to < eend;
        }
        if (same_program) continue;
        bool shares_field = false;
        auto touches = [&](const tdg::Mat& m, const std::string& name) {
            return m.matches_field(name) || m.modifies_field(name);
        };
        for (const tdg::Field& f : u.node(e.from).modified_fields()) {
            shares_field = shares_field || touches(u.node(e.to), f.name);
        }
        for (const tdg::Field& f : u.node(e.from).match_fields()) {
            shares_field = shares_field || u.node(e.to).modifies_field(f.name);
        }
        EXPECT_TRUE(shares_field)
            << u.node(e.from).name() << " -> " << u.node(e.to).name();
    }
}

TEST(Baselines, StagePackerFirstFit) {
    StagePacker p(3, 1.0);
    EXPECT_EQ(p.place(0.6, 0), 0);
    EXPECT_EQ(p.place(0.6, 0), 1);  // does not fit stage 0 anymore
    EXPECT_EQ(p.place(0.4, 0), 0);
    EXPECT_EQ(p.place(0.5, 2), 2);  // min_stage honored
    EXPECT_FALSE(p.place(0.7, 2).has_value());
    EXPECT_FALSE(p.place(1.5, 0).has_value());  // larger than a stage
    EXPECT_NEAR(p.remaining_total(), 3.0 - 2.1, 1e-9);
}

TEST(Baselines, StagePackerValidation) {
    EXPECT_THROW(StagePacker(0, 1.0), std::invalid_argument);
    StagePacker p(2, 1.0);
    EXPECT_THROW(p.commit(5, 0.1), std::out_of_range);
}

TEST(Baselines, MilpPackMinimizesMakespan) {
    // Three independent 0.5 MATs in stages of capacity 1.0: two stages max,
    // exact packing should use stage 0 twice and stage 1 once -> makespan 1.
    tdg::Tdg t;
    for (int i = 0; i < 3; ++i) {
        t.add_node(tdg::Mat("m" + std::to_string(i),
                            {tdg::header_field("h" + std::to_string(i), 2)},
                            {tdg::Action{"a", {}}}, 4, 0.5));
    }
    milp::MilpOptions options;
    options.time_limit_seconds = 10.0;
    const auto stages = milp_pack(t, {0, 1, 2}, {1.0, 1.0, 1.0}, options);
    ASSERT_TRUE(stages.has_value());
    int makespan = 0;
    for (const int s : *stages) makespan = std::max(makespan, s);
    EXPECT_EQ(makespan, 1);
}

TEST(Baselines, MilpPackRespectsDependencies) {
    tdg::Tdg t;
    t.add_node(tdg::Mat("a", {tdg::header_field("h", 2)},
                        {tdg::Action{"w", {tdg::metadata_field("m", 4)}}}, 4, 0.2));
    t.add_node(tdg::Mat("b", {tdg::metadata_field("m", 4)}, {tdg::Action{"r", {}}}, 4,
                        0.2));
    t.add_edge(0, 1, tdg::DepType::kMatch);
    milp::MilpOptions options;
    const auto stages = milp_pack(t, {0, 1}, {1.0, 1.0, 1.0}, options);
    ASSERT_TRUE(stages.has_value());
    EXPECT_LT((*stages)[0], (*stages)[1]);
}

TEST(Baselines, MilpPackInfeasibleReturnsNullopt) {
    tdg::Tdg t;
    t.add_node(tdg::Mat("a", {tdg::header_field("h", 2)}, {tdg::Action{"w", {}}}, 4, 0.9));
    const auto stages = milp_pack(t, {0}, {0.5}, milp::MilpOptions{});
    EXPECT_FALSE(stages.has_value());
}

TEST(Baselines, HermesBeatsBaselinesOnOverhead) {
    // The headline claim: Hermes' greedy overhead is <= every baseline's
    // on a resource-pressured testbed. Shared-field conflict chains deepen
    // the union pipeline, so the testbed needs more stages than switches.
    const auto programs = workload(8);
    sim::TestbedConfig tb;
    tb.switch_count = 4;
    tb.stages = 10;
    const net::Network n = sim::make_testbed(tb);
    const tdg::Tdg merged = core::analyze(programs);
    const core::DeployOutcome hermes_outcome = core::try_deploy_greedy(merged, n).value();
    const std::int64_t hermes_overhead =
        hermes_outcome.metrics.max_pair_metadata_bytes;
    for (const auto& strategy : all_strategies()) {
        const StrategyOutcome outcome = strategy->deploy(programs, n, quick_options());
        const std::int64_t overhead =
            core::max_pair_metadata(outcome.merged, outcome.deployment);
        EXPECT_LE(hermes_overhead, overhead) << strategy->name();
    }
}

TEST(Baselines, FflAndFflsDifferOnHeterogeneousSizes) {
    // FFLS sorts by size inside levels: with heterogeneous resources the two
    // heuristics produce different placements (usually different overhead).
    const auto programs = workload(8);
    const net::Network n = pressured_testbed();
    FirstFitByLevelStrategy ffl("FFL", LevelOrder::kById);
    FirstFitByLevelStrategy ffls("FFLS", LevelOrder::kBySizeDescending);
    const auto a = ffl.deploy(programs, n, quick_options());
    const auto b = ffls.deploy(programs, n, quick_options());
    bool any_difference = false;
    for (std::size_t i = 0; i < a.deployment.placements.size(); ++i) {
        any_difference = any_difference ||
                         a.deployment.placements[i].sw != b.deployment.placements[i].sw ||
                         a.deployment.placements[i].stage != b.deployment.placements[i].stage;
    }
    EXPECT_TRUE(any_difference);
}

TEST(Baselines, SingleSwitchKeepsWholeProgramsTogetherWhenRoomy) {
    // With ample capacity, MS puts every program wholly on the first switch:
    // zero inter-switch overhead.
    const auto programs = workload(2);
    sim::TestbedConfig config;
    config.stages = 12;
    const net::Network n = sim::make_testbed(config);
    SingleSwitchStrategy ms("MS", SwitchPick::kFirstFit);
    const StrategyOutcome outcome = ms.deploy(programs, n, quick_options());
    EXPECT_EQ(core::max_pair_metadata(outcome.merged, outcome.deployment), 0);
    EXPECT_EQ(outcome.deployment.occupied_switches().size(), 1u);
}

TEST(Baselines, HeuristicModeSkipsIlp) {
    const auto programs = workload(3);
    const net::Network n = pressured_testbed();
    BaselineOptions options = quick_options();
    options.use_ilp = false;
    SingleSwitchStrategy ms("MS", SwitchPick::kFirstFit);
    const StrategyOutcome outcome = ms.deploy(programs, n, options);
    EXPECT_EQ(outcome.status, "heuristic");
}

TEST(Baselines, AddCrossingRoutesCoversAllPairs) {
    const auto programs = workload(6);
    const net::Network n = pressured_testbed();
    FirstFitByLevelStrategy ffl("FFL", LevelOrder::kById);
    const StrategyOutcome outcome = ffl.deploy(programs, n, quick_options());
    for (const tdg::Edge& e : outcome.merged.edges()) {
        const net::SwitchId u = outcome.deployment.switch_of(e.from);
        const net::SwitchId v = outcome.deployment.switch_of(e.to);
        if (u != v) EXPECT_TRUE(outcome.deployment.routes.count({u, v})) << u << "->" << v;
    }
}

}  // namespace
}  // namespace hermes::baselines
