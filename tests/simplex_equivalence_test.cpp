// Equivalence tests pinning the production revised sparse simplex
// (milp/simplex.h) to the retained dense reference kernel
// (milp/simplex_reference.h): statuses and objectives must agree on
// randomized LPs, seeded P#1 relaxations, and full branch-and-bound runs,
// and presolve must never change a MILP result.
#include <gtest/gtest.h>

#include <cmath>

#include "core/formulation.h"
#include "milp/presolve.h"
#include "milp/simplex.h"
#include "milp/simplex_reference.h"
#include "milp/solver.h"
#include "sim/testbed.h"
#include "util/rng.h"

namespace hermes::milp {
namespace {

constexpr double kTol = 1e-6;

// Random LP with mixed senses, sparse rows, negative coefficients, and a mix
// of finite and infinite upper bounds — wide enough to reach the optimal,
// infeasible, and unbounded exits of both kernels.
Model random_lp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < vars; ++i) {
        const double u = rng.chance(0.25) ? kInfinity : rng.uniform_real(1.0, 10.0);
        xs.push_back(m.add_continuous(0.0, u));
    }
    for (int r = 0; r < rows; ++r) {
        LinExpr e;
        for (const VarId x : xs) {
            if (rng.chance(0.4)) continue;
            e += LinExpr::term(x, rng.uniform_real(-2.0, 2.0));
        }
        if (e.empty()) e += LinExpr::term(xs[0]);
        const double roll = rng.uniform_real(0.0, 1.0);
        if (roll < 0.55) {
            m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(1.0, 20.0));
        } else if (roll < 0.85) {
            m.add_constraint(std::move(e), Sense::kGe, rng.uniform_real(-10.0, 1.0));
        } else {
            m.add_constraint(std::move(e), Sense::kEq, rng.uniform_real(0.0, 5.0));
        }
    }
    LinExpr obj;
    for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(-1.0, 3.0));
    if (rng.chance(0.5)) {
        m.maximize(std::move(obj));
    } else {
        m.minimize(std::move(obj));
    }
    return m;
}

// Always-feasible bounded LP (positive coefficients, generous Le rows, mild
// Ge rows) for fixtures that need an optimal chain to exist.
Model feasible_random_lp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < vars; ++i) xs.push_back(m.add_continuous(0.0, 10.0));
    for (int r = 0; r < rows; ++r) {
        LinExpr e;
        for (const VarId x : xs) e += LinExpr::term(x, rng.uniform_real(0.1, 2.0));
        if (r % 4 == 3) {
            m.add_constraint(std::move(e), Sense::kGe, rng.uniform_real(0.5, 2.0));
        } else {
            m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(5.0, 50.0));
        }
    }
    LinExpr obj;
    for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(0.5, 3.0));
    m.maximize(std::move(obj));
    return m;
}

// Random MILP mirroring parallel_milp_test's generator.
Model random_milp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < vars; ++i) {
        xs.push_back(rng.chance(0.5)
                         ? m.add_binary()
                         : m.add_integer(0.0, static_cast<double>(rng.uniform_int(1, 4))));
    }
    for (int r = 0; r < rows; ++r) {
        LinExpr e;
        for (const VarId x : xs) e += LinExpr::term(x, rng.uniform_real(0.1, 2.0));
        m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(2.0, 8.0));
    }
    LinExpr obj;
    for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(0.5, 3.0));
    m.maximize(std::move(obj));
    return m;
}

// Seeded P#1 model on the testbed (same construction as bench/micro_solver's
// sweep instance, smaller).
Model seeded_p1_model(std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    tdg::Tdg t;
    const int mats = static_cast<int>(rng.uniform_int(3, 5));
    for (int i = 0; i < mats; ++i) {
        t.add_node(tdg::Mat(
            "m" + std::to_string(i), {tdg::header_field("h" + std::to_string(i), 2)},
            {tdg::Action{"a", {tdg::metadata_field("x" + std::to_string(i), 4)}}}, 16,
            rng.uniform_real(0.3, 0.6)));
        if (i > 0) {
            t.add_edge(static_cast<tdg::NodeId>(i - 1), static_cast<tdg::NodeId>(i),
                       tdg::DepType::kMatch);
            t.edges().back().metadata_bytes = static_cast<int>(rng.uniform_int(1, 6));
        }
    }
    sim::TestbedConfig config;
    config.switch_count = 2;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    core::P1Formulation f(t, n, core::FormulationOptions{});
    return f.model();
}

// Primal feasibility of an LP *relaxation* point: bounds and constraint
// rows of the original model, without the integrality check that
// Model::is_feasible applies to binary variables.
bool relaxation_feasible(const Model& m, const std::vector<double>& values,
                         double tolerance) {
    if (values.size() != m.variable_count()) return false;
    for (std::size_t i = 0; i < m.variable_count(); ++i) {
        const Variable& v = m.variables()[i];
        if (values[i] < v.lower - tolerance || values[i] > v.upper + tolerance) {
            return false;
        }
    }
    for (const Constraint& c : m.constraints()) {
        const double lhs = c.expr.evaluate(values);
        if (c.sense == Sense::kLe && lhs > c.rhs + tolerance) return false;
        if (c.sense == Sense::kGe && lhs < c.rhs - tolerance) return false;
        if (c.sense == Sense::kEq && std::abs(lhs - c.rhs) > tolerance) return false;
    }
    return true;
}

TEST(SimplexEquivalence, RandomLpsAgreeWithReferenceKernel) {
    int optimal = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const Model m = random_lp(6 + static_cast<int>(seed % 7),
                                  5 + static_cast<int>(seed % 5), seed);
        const LpResult revised = solve_lp(m);
        const LpResult dense = reference::solve_lp(m);
        ASSERT_EQ(revised.status, dense.status) << "seed " << seed;
        if (revised.status != LpStatus::kOptimal) continue;
        ++optimal;
        EXPECT_NEAR(revised.objective, dense.objective,
                    kTol * (1.0 + std::abs(dense.objective)))
            << "seed " << seed;
        EXPECT_TRUE(m.is_feasible(revised.values, 1e-5)) << "seed " << seed;
        EXPECT_NEAR(m.objective_value(revised.values), revised.objective, 1e-5)
            << "seed " << seed;
    }
    // The generator must actually exercise the optimal exit, not just the
    // infeasible/unbounded ones.
    EXPECT_GE(optimal, 20);
}

TEST(SimplexEquivalence, P1RelaxationsAgreeWithReferenceKernel) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Model m = seeded_p1_model(seed);
        const LpResult revised = solve_lp(m);
        const LpResult dense = reference::solve_lp(m);
        ASSERT_EQ(revised.status, dense.status) << "seed " << seed;
        if (revised.status != LpStatus::kOptimal) continue;
        EXPECT_NEAR(revised.objective, dense.objective,
                    kTol * (1.0 + std::abs(dense.objective)))
            << "seed " << seed;
        EXPECT_TRUE(relaxation_feasible(m, revised.values, 1e-5))
            << "seed " << seed;
        EXPECT_TRUE(relaxation_feasible(m, dense.values, 1e-5))
            << "seed " << seed;
    }
}

TEST(SimplexEquivalence, WarmChainsMatchColdSolvesOnBothKernels) {
    // A branch-and-bound-style dive: tighten one bound at a time, warm start
    // each re-solve from the previous basis, and require exact agreement with
    // a cold solve of the same model — per kernel, at every depth.
    for (const bool use_reference : {false, true}) {
        Model m = feasible_random_lp(10, 8, 77);
        const auto solve_kernel = [&](const Model& model, const Basis* warm) {
            LpOptions options;
            options.warm_basis = warm;
            return use_reference ? reference::solve_lp(model, options)
                                 : solve_lp(model, options);
        };
        LpResult prev = solve_kernel(m, nullptr);
        ASSERT_EQ(prev.status, LpStatus::kOptimal);
        for (int depth = 0; depth < 6; ++depth) {
            const auto j = static_cast<std::size_t>(depth % m.variable_count());
            m.set_upper(static_cast<VarId>(j),
                        std::max(0.0, std::floor(prev.values[j] - 0.01)));
            const LpResult cold = solve_kernel(m, nullptr);
            const LpResult warm = solve_kernel(m, &prev.basis);
            ASSERT_EQ(warm.status, cold.status)
                << "kernel " << use_reference << " depth " << depth;
            if (cold.status != LpStatus::kOptimal) break;
            EXPECT_NEAR(warm.objective, cold.objective,
                        kTol * (1.0 + std::abs(cold.objective)))
                << "kernel " << use_reference << " depth " << depth;
            EXPECT_TRUE(m.is_feasible(warm.values, 1e-5));
            prev = warm;
        }
    }
}

TEST(SimplexEquivalence, CrossKernelBasesDegradeToColdSolves) {
    // Each kernel exports a basis in its own column space; feeding one
    // kernel's basis to the other must silently fall back to the cold path.
    const Model m = feasible_random_lp(10, 8, 11);
    const LpResult revised = solve_lp(m);
    const LpResult dense = reference::solve_lp(m);
    ASSERT_EQ(revised.status, LpStatus::kOptimal);
    ASSERT_EQ(dense.status, LpStatus::kOptimal);
    LpOptions from_dense;
    from_dense.warm_basis = &dense.basis;
    LpOptions from_revised;
    from_revised.warm_basis = &revised.basis;
    const LpResult rev_from_dense = solve_lp(m, from_dense);
    const LpResult dense_from_rev = reference::solve_lp(m, from_revised);
    ASSERT_EQ(rev_from_dense.status, LpStatus::kOptimal);
    ASSERT_EQ(dense_from_rev.status, LpStatus::kOptimal);
    EXPECT_NEAR(rev_from_dense.objective, revised.objective, kTol);
    EXPECT_NEAR(dense_from_rev.objective, dense.objective, kTol);
}

TEST(SimplexEquivalence, MilpAgreesAcrossLpKernels) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Model m = random_milp(10, 6, seed);
        MilpOptions revised;
        MilpOptions dense = revised;
        dense.use_reference_lp = true;
        const MilpResult a = solve_milp(m, revised);
        const MilpResult b = solve_milp(m, dense);
        ASSERT_EQ(a.status, b.status) << "seed " << seed;
        if (!a.has_solution()) continue;
        EXPECT_NEAR(a.objective, b.objective, kTol) << "seed " << seed;
        EXPECT_TRUE(m.is_feasible(a.values, 1e-5)) << "seed " << seed;
        EXPECT_TRUE(m.is_feasible(b.values, 1e-5)) << "seed " << seed;
    }
}

TEST(SimplexEquivalence, PresolveOnAndOffAgree) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Model m = random_milp(12, 6, seed * 31);
        MilpOptions on;
        MilpOptions off = on;
        off.presolve = false;
        const MilpResult a = solve_milp(m, on);
        const MilpResult b = solve_milp(m, off);
        ASSERT_EQ(a.status, b.status) << "seed " << seed;
        if (!a.has_solution()) continue;
        EXPECT_NEAR(a.objective, b.objective, kTol) << "seed " << seed;
        // Both assignments must satisfy the ORIGINAL rows, not merely the
        // presolve-reduced image: a postsolve bug that fabricates values for
        // eliminated variables would pass the objective check alone.
        EXPECT_TRUE(m.is_feasible(a.values, 1e-5)) << "seed " << seed;
        EXPECT_TRUE(m.is_feasible(b.values, 1e-5)) << "seed " << seed;
        EXPECT_NEAR(m.objective_value(a.values), a.objective, 1e-5)
            << "seed " << seed;
    }
}

TEST(SimplexEquivalence, PresolveOnAndOffAgreeOnP1) {
    const Model m = seeded_p1_model(3);
    MilpOptions on;
    on.time_limit_seconds = 30.0;
    MilpOptions off = on;
    off.presolve = false;
    const MilpResult a = solve_milp(m, on);
    const MilpResult b = solve_milp(m, off);
    ASSERT_EQ(a.status, b.status);
    ASSERT_TRUE(a.has_solution());
    EXPECT_NEAR(a.objective, b.objective, kTol * (1.0 + std::abs(b.objective)));
    EXPECT_TRUE(m.is_feasible(a.values, 1e-5));
    EXPECT_TRUE(m.is_feasible(b.values, 1e-5));
    EXPECT_NEAR(m.objective_value(a.values), a.objective,
                1e-5 * (1.0 + std::abs(a.objective)));
}

TEST(Presolve, FixesAndDropsCascade) {
    // x fixed by a singleton row cascades: y's row becomes a singleton, z's
    // bound tightens, every row dies, all three variables end up fixed.
    Model m;
    const VarId x = m.add_binary("x");
    const VarId y = m.add_integer(0.0, 5.0, "y");
    const VarId z = m.add_continuous(0.0, 4.0, "z");
    m.add_constraint(LinExpr::term(x), Sense::kEq, 1.0);
    m.add_constraint(LinExpr::term(y) + LinExpr::term(x, 3.0), Sense::kLe, 3.2);
    m.add_constraint(LinExpr::term(z) - LinExpr::term(y), Sense::kEq, 2.0);
    m.minimize(LinExpr::term(z) - LinExpr::term(y));
    const PresolveResult pre = presolve(m);
    ASSERT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.reduced.variable_count(), 0u);
    EXPECT_EQ(pre.reduced.constraint_count(), 0u);
    const std::vector<double> values = pre.postsolve({});
    ASSERT_EQ(values.size(), 3u);
    EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(x)], 1.0);
    EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(y)], 0.0);
    EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(z)], 2.0);
    EXPECT_TRUE(m.is_feasible(values, 1e-9));
}

TEST(Presolve, FullyFixedModelSolvesOptimal) {
    // Regression: a model presolve reduces to zero variables must still
    // report optimal with the postsolved assignment, not infeasible.
    Model m;
    const VarId x = m.add_binary("x");
    const VarId y = m.add_binary("y");
    m.add_constraint(LinExpr::term(x), Sense::kEq, 1.0);
    m.add_constraint(LinExpr::term(y), Sense::kEq, 0.0);
    m.maximize(LinExpr::term(x, 2.0) + LinExpr::term(y, 5.0));
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 2.0, kTol);
    ASSERT_EQ(r.values.size(), 2u);
    EXPECT_DOUBLE_EQ(r.values[0], 1.0);
    EXPECT_DOUBLE_EQ(r.values[1], 0.0);
}

TEST(Presolve, DetectsInfeasibilityFromCrossedSingletons) {
    Model m;
    const VarId x = m.add_integer(0.0, 10.0, "x");
    m.add_constraint(LinExpr::term(x), Sense::kGe, 7.0);
    m.add_constraint(LinExpr::term(x), Sense::kLe, 3.0);
    m.minimize(LinExpr::term(x));
    const PresolveResult pre = presolve(m);
    EXPECT_TRUE(pre.infeasible);
    EXPECT_EQ(solve_milp(m).status, MilpStatus::kInfeasible);
}

TEST(Presolve, IntegerBoundsRoundInward) {
    Model m;
    const VarId x = m.add_integer(0.0, 10.0, "x");
    m.add_constraint(LinExpr::term(x, 2.0), Sense::kLe, 9.0);   // x <= 4.5 -> 4
    m.add_constraint(LinExpr::term(x, 3.0), Sense::kGe, 3.5);   // x >= 7/6 -> 2
    m.minimize(LinExpr::term(x));
    const PresolveResult pre = presolve(m);
    ASSERT_FALSE(pre.infeasible);
    ASSERT_EQ(pre.reduced.variable_count(), 1u);
    EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lower, 2.0);
    EXPECT_DOUBLE_EQ(pre.reduced.variable(0).upper, 4.0);
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 2.0, kTol);
}

TEST(Presolve, SwitchBanInfeasibilityRoundTripsWithBoundsIntact) {
    // Failure-induced switch ban, as the repair planner's MILP escalation
    // issues it: the assignment row Σ x(a,u) = 1 stays, but every candidate
    // switch is banned by pinning its x to upper bound 0. Presolve's fixing
    // pass must prove infeasibility (all terms fix to 0, the empty row
    // contradicts its rhs), solve_milp must report kInfeasible without
    // touching a simplex, and the original model — presolve operates on a
    // copy — must keep the caller's bounds exactly.
    Model m;
    const VarId x0 = m.add_binary("x_a_u0");
    const VarId x1 = m.add_binary("x_a_u1");
    const VarId x2 = m.add_binary("x_a_u2");
    m.add_constraint(LinExpr::term(x0) + LinExpr::term(x1) + LinExpr::term(x2),
                     Sense::kEq, 1.0);
    m.minimize(LinExpr::term(x0) + LinExpr::term(x1, 2.0) + LinExpr::term(x2, 3.0));
    for (const VarId x : {x0, x1, x2}) m.set_upper(x, 0.0);  // all switches failed

    const PresolveResult pre = presolve(m);
    EXPECT_TRUE(pre.infeasible);

    const MilpResult r = solve_milp(m);
    EXPECT_EQ(r.status, MilpStatus::kInfeasible);
    EXPECT_FALSE(r.has_solution());

    for (const VarId x : {x0, x1, x2}) {
        EXPECT_DOUBLE_EQ(m.variable(x).lower, 0.0);
        EXPECT_DOUBLE_EQ(m.variable(x).upper, 0.0);
    }
}

TEST(Presolve, PartialSwitchBanKeepsSurvivorsFeasible) {
    // Banning a strict subset must not over-trigger: the survivor picks up
    // the assignment and the banned variables postsolve to 0.
    Model m;
    const VarId x0 = m.add_binary("x_a_u0");
    const VarId x1 = m.add_binary("x_a_u1");
    m.add_constraint(LinExpr::term(x0) + LinExpr::term(x1), Sense::kEq, 1.0);
    m.minimize(LinExpr::term(x0) + LinExpr::term(x1, 2.0));
    m.set_upper(x0, 0.0);  // only u0 failed

    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 2.0, kTol);
    ASSERT_EQ(r.values.size(), 2u);
    EXPECT_DOUBLE_EQ(r.values[0], 0.0);
    EXPECT_DOUBLE_EQ(r.values[1], 1.0);
}

TEST(Presolve, WarmStartSurvivesRestriction) {
    Model m;
    const VarId x = m.add_binary("x");
    const VarId y = m.add_binary("y");
    const VarId z = m.add_binary("z");
    m.add_constraint(LinExpr::term(x), Sense::kEq, 1.0);  // presolve fixes x
    m.add_constraint(LinExpr::term(y) + LinExpr::term(z), Sense::kLe, 1.0);
    m.maximize(LinExpr::term(x) + LinExpr::term(y, 2.0) + LinExpr::term(z));
    MilpOptions options;
    options.warm_start = std::vector<double>{1.0, 0.0, 1.0};  // feasible, not optimal
    const MilpResult r = solve_milp(m, options);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 3.0, kTol);
}

}  // namespace
}  // namespace hermes::milp
