// mini-P4 front end tests: lexing, parsing, lowering, gating, and errors.
#include <gtest/gtest.h>

#include "core/hermes.h"
#include "core/verifier.h"
#include "p4/frontend.h"
#include "p4/lexer.h"
#include "sim/testbed.h"
#include "tdg/analyzer.h"

namespace hermes::p4 {
namespace {

constexpr const char* kMonitor = R"(
// a small measurement pipeline
program flow_monitor;

header ipv4 { src_addr: 32; dst_addr: 32; ttl: 8; }
metadata meta { counter_index: 32; flow_count: 32; report: 1; }

action set_index() { writes meta.counter_index; }
action count_it()  { writes meta.flow_count; }
action report_it() { writes meta.report; }

table mon_hash {
  key = { ipv4.src_addr; ipv4.dst_addr; }
  actions = { set_index; }
  size = 1024;
  resource = 0.4;
}
table mon_count {
  key = { meta.counter_index; }
  actions = { count_it; }
  size = 16;
  resource = 0.3;
}
table mon_report {
  key = { meta.flow_count; }
  actions = { report_it; }
  size = 32;
  resource = 0.2;
}

control {
  apply(mon_hash);
  apply(mon_count);
  apply(mon_report);
}
)";

// ---- Lexer -------------------------------------------------------------------

TEST(P4Lexer, TokenizesSymbolsAndIdents) {
    const auto tokens = tokenize("table t { key = { a.b: lpm; } }");
    ASSERT_GE(tokens.size(), 10u);
    EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
    EXPECT_EQ(tokens[0].text, "table");
    EXPECT_EQ(tokens[2].kind, TokenKind::kLBrace);
    EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(P4Lexer, DottedPathsAreSingleTokens) {
    const auto tokens = tokenize("ipv4.dst_addr");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].text, "ipv4.dst_addr");
}

TEST(P4Lexer, NumbersAndReals) {
    const auto tokens = tokenize("size = 1024; resource = 0.4;");
    EXPECT_EQ(tokens[2].kind, TokenKind::kNumber);
    EXPECT_EQ(tokens[6].kind, TokenKind::kReal);
}

TEST(P4Lexer, CommentsSkippedLinesCounted) {
    const auto tokens = tokenize("// comment\nx");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].line, 2);
}

TEST(P4Lexer, UnexpectedCharacterThrows) {
    EXPECT_THROW((void)tokenize("table @"), std::invalid_argument);
}

// ---- Compilation ----------------------------------------------------------------

TEST(P4Frontend, CompilesMonitorPipeline) {
    const prog::Program p = compile(kMonitor);
    EXPECT_EQ(p.name(), "flow_monitor");
    ASSERT_EQ(p.mat_count(), 3u);
    EXPECT_EQ(p.mat(0).name(), "mon_hash");
    EXPECT_EQ(p.mat(0).rule_capacity(), 1024);
    EXPECT_DOUBLE_EQ(p.mat(0).resource_units(), 0.4);
    EXPECT_EQ(p.mat(0).match_fields().size(), 2u);
    // Bit widths round up to bytes: 32 bits -> 4 bytes, 1 bit -> 1 byte.
    EXPECT_EQ(p.mat(1).match_fields()[0].size_bytes, 4);
    EXPECT_TRUE(p.mat(1).match_fields()[0].is_metadata());
}

TEST(P4Frontend, DependenciesFlowThroughMetadata) {
    tdg::Tdg t = compile(kMonitor).to_tdg();
    tdg::analyze(t);
    // hash -M-> count -M-> report.
    const auto e1 = t.find_edge(0, 1);
    ASSERT_TRUE(e1.has_value());
    EXPECT_EQ(e1->type, tdg::DepType::kMatch);
    EXPECT_EQ(e1->metadata_bytes, 4);
    ASSERT_TRUE(t.find_edge(1, 2).has_value());
}

TEST(P4Frontend, IfBlockGatesOnLastWriter) {
    const prog::Program p = compile(R"(
program gated;
header h { f: 16; }
metadata meta { flag: 1; out: 8; }
action set_flag() { writes meta.flag; }
action act() { writes meta.out; }
table classify { key = { h.f; } actions = { set_flag; } size = 8; resource = 0.2; }
table handle { key = { h.f; } actions = { act; } size = 8; resource = 0.2; }
control {
  apply(classify);
  if (meta.flag) {
    apply(handle);
  }
}
)");
    const tdg::Tdg t = p.to_tdg();
    const auto edge = t.find_edge(0, 1);
    ASSERT_TRUE(edge.has_value());
    EXPECT_EQ(edge->type, tdg::DepType::kSuccessor);
}

TEST(P4Frontend, NestedIfGatesOnInnerWriter) {
    const prog::Program p = compile(R"(
program nested;
header h { f: 16; }
metadata meta { a: 8; b: 8; c: 8; }
action wa() { writes meta.a; }
action wb() { writes meta.b; }
action wc() { writes meta.c; }
table t1 { key = { h.f; } actions = { wa; } size = 1; resource = 0.1; }
table t2 { key = { h.f; } actions = { wb; } size = 1; resource = 0.1; }
table t3 { key = { h.f; } actions = { wc; } size = 1; resource = 0.1; }
control {
  apply(t1);
  if (meta.a) {
    apply(t2);
    if (meta.b) {
      apply(t3);
    }
  }
}
)");
    const tdg::Tdg t = p.to_tdg();
    EXPECT_EQ(t.find_edge(0, 1)->type, tdg::DepType::kSuccessor);
    EXPECT_EQ(t.find_edge(1, 2)->type, tdg::DepType::kSuccessor);
}

TEST(P4Frontend, MatchKindsAndStrongestWins) {
    const prog::Program p = compile(R"(
program kinds;
header h { a: 32; b: 32; }
metadata meta { x: 8; }
action w() { writes meta.x; }
table t { key = { h.a: lpm; h.b: ternary; } actions = { w; } size = 4; resource = 0.1; }
control { apply(t); }
)");
    EXPECT_EQ(p.mat(0).match_kind(), tdg::MatchKind::kTernary);
}

TEST(P4Frontend, CompiledProgramDeploys) {
    const tdg::Tdg merged = core::analyze({compile(kMonitor)});
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 1;
    const net::Network n = sim::make_testbed(config);
    const core::DeployOutcome outcome = core::try_deploy_greedy(merged, n).value();
    EXPECT_TRUE(core::verify(merged, n, outcome.deployment).ok);
    EXPECT_EQ(outcome.metrics.occupied_switches, 3);
    EXPECT_GT(outcome.metrics.max_pair_metadata_bytes, 0);
}

// ---- Errors -----------------------------------------------------------------------

TEST(P4Frontend, ErrorsCarryLineNumbers) {
    try {
        (void)compile("program p;\nheader h { f: 8; }\ntable t {\n  key = { nope; }\n}");
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& ex) {
        EXPECT_NE(std::string(ex.what()).find(":4:"), std::string::npos) << ex.what();
    }
}

TEST(P4Frontend, TryCompileReturnsStatusWithColumn) {
    const auto bad = p4::try_compile(
        "program p;\nheader h { f: 8; }\ntable t {\n  key = { nope; }\n}");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), hermes::util::StatusCode::kInvalidInput);
    EXPECT_EQ(bad.status().loc().line, 4);
    EXPECT_GT(bad.status().loc().col, 0);

    const auto good = p4::try_compile(kMonitor);
    ASSERT_TRUE(good.ok());

    const auto missing = p4::try_compile_file("/nonexistent.p4mini");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), hermes::util::StatusCode::kIo);
}

TEST(P4Frontend, SemanticErrorsRejected) {
    const std::string preamble = R"(
program p;
header h { f: 8; }
metadata meta { x: 8; }
action w() { writes meta.x; }
)";
    // unknown action
    EXPECT_THROW((void)compile(preamble + "table t { key = { h.f; } actions = { nope; } "
                                          "size = 1; resource = 0.1; } control { apply(t); }"),
                 std::invalid_argument);
    // table applied twice
    EXPECT_THROW(
        (void)compile(preamble + "table t { key = { h.f; } actions = { w; } size = 1; "
                                 "resource = 0.1; } control { apply(t); apply(t); }"),
        std::invalid_argument);
    // missing control
    EXPECT_THROW((void)compile(preamble + "table t { key = { h.f; } actions = { w; } "
                                          "size = 1; resource = 0.1; }"),
                 std::invalid_argument);
    // if with no writer
    EXPECT_THROW(
        (void)compile(preamble + "table t { key = { h.f; } actions = { w; } size = 1; "
                                 "resource = 0.1; } control { if (meta.x) { apply(t); } }"),
        std::invalid_argument);
    // zero resource
    EXPECT_THROW((void)compile(preamble + "table t { key = { h.f; } actions = { w; } "
                                          "size = 1; resource = 0; } control { apply(t); }"),
                 std::invalid_argument);
    // unknown field in if
    EXPECT_THROW(
        (void)compile(preamble + "table t { key = { h.f; } actions = { w; } size = 1; "
                                 "resource = 0.1; } control { if (meta.nope) { apply(t); } }"),
        std::invalid_argument);
    // apply unknown table
    EXPECT_THROW((void)compile(preamble + "control { apply(ghost); }"),
                 std::invalid_argument);
}

TEST(P4Frontend, DuplicateDeclarationsRejected) {
    EXPECT_THROW((void)compile("program p;\nheader h { f: 8; f: 8; }"),
                 std::invalid_argument);
    EXPECT_THROW((void)compile("program p;\nheader h { f: 8; }\naction a() {}\n"
                               "action a() {}"),
                 std::invalid_argument);
}

TEST(P4Frontend, FileLoading) {
    EXPECT_THROW((void)compile_file("/nonexistent.p4mini"), std::runtime_error);
}

}  // namespace
}  // namespace hermes::p4
