// Branch-and-bound MILP solver tests: knapsack, assignment, bin packing,
// warm starts, limits, and status reporting.
#include <gtest/gtest.h>

#include "milp/solver.h"

namespace hermes::milp {
namespace {

constexpr double kTol = 1e-6;

TEST(MilpSolver, PureLpPassesThrough) {
    Model m;
    const VarId x = m.add_continuous(0.0, 4.0, "x");
    m.maximize(LinExpr::term(x));
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 4.0, kTol);
    EXPECT_EQ(r.nodes, 1);
}

TEST(MilpSolver, IntegerRoundingMatters) {
    // max x st 2x <= 7, x integer -> 3 (LP gives 3.5).
    Model m;
    const VarId x = m.add_integer(0.0, 10.0, "x");
    m.add_constraint(LinExpr::term(x, 2.0), Sense::kLe, 7.0);
    m.maximize(LinExpr::term(x));
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 3.0, kTol);
}

TEST(MilpSolver, SmallKnapsack) {
    // values {60,100,120}, weights {10,20,30}, cap 50 -> 220 (items 2,3).
    Model m;
    const double values[] = {60, 100, 120};
    const double weights[] = {10, 20, 30};
    std::vector<VarId> x;
    LinExpr weight, value;
    for (int i = 0; i < 3; ++i) {
        x.push_back(m.add_binary("item" + std::to_string(i)));
        weight += LinExpr::term(x.back(), weights[i]);
        value += LinExpr::term(x.back(), values[i]);
    }
    m.add_constraint(weight, Sense::kLe, 50.0);
    m.maximize(value);
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 220.0, kTol);
    EXPECT_LT(r.values[static_cast<std::size_t>(x[0])], 0.5);
    EXPECT_GT(r.values[static_cast<std::size_t>(x[1])], 0.5);
    EXPECT_GT(r.values[static_cast<std::size_t>(x[2])], 0.5);
}

TEST(MilpSolver, LargerKnapsackKnownOptimum) {
    // 8-item knapsack, optimum checked by exhaustive enumeration: 1735.
    const double w[] = {23, 31, 29, 44, 53, 38, 63, 85};
    const double v[] = {92, 57, 49, 68, 60, 43, 67, 84};
    const double cap = 165;
    // Exhaustive check baked into the test for self-validation.
    double best = 0;
    for (int mask = 0; mask < 256; ++mask) {
        double tw = 0, tv = 0;
        for (int i = 0; i < 8; ++i) {
            if (mask & (1 << i)) {
                tw += w[i];
                tv += v[i];
            }
        }
        if (tw <= cap) best = std::max(best, tv);
    }

    Model m;
    LinExpr weight, value;
    for (int i = 0; i < 8; ++i) {
        const VarId x = m.add_binary("x" + std::to_string(i));
        weight += LinExpr::term(x, w[i]);
        value += LinExpr::term(x, v[i]);
    }
    m.add_constraint(weight, Sense::kLe, cap);
    m.maximize(value);
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, best, kTol);
}

TEST(MilpSolver, AssignmentProblem) {
    // 3x3 assignment, cost matrix with known optimum 5 (1+1+3... verified).
    const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
    Model m;
    VarId x[3][3];
    LinExpr obj;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            x[i][j] = m.add_binary("a" + std::to_string(i) + std::to_string(j));
            obj += LinExpr::term(x[i][j], cost[i][j]);
        }
    }
    for (int i = 0; i < 3; ++i) {
        LinExpr row, col;
        for (int j = 0; j < 3; ++j) {
            row += LinExpr::term(x[i][j]);
            col += LinExpr::term(x[j][i]);
        }
        m.add_constraint(std::move(row), Sense::kEq, 1.0);
        m.add_constraint(std::move(col), Sense::kEq, 1.0);
    }
    m.minimize(obj);
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 5.0, kTol);  // x[0][1] + x[1][0] + x[2][2] = 1+2+2
}

TEST(MilpSolver, BinPackingNeedsThreeBins) {
    // Items {0.6, 0.5, 0.5, 0.4} into bins of 1.0 -> 2 bins impossible, 3 ok
    // ... actually 0.6+0.4 and 0.5+0.5 fit in 2. Use {0.6,0.5,0.5,0.5}: 3 bins.
    const std::vector<double> items = {0.6, 0.5, 0.5, 0.5};
    const int bins = 4;
    Model m;
    std::vector<std::vector<VarId>> x(items.size());
    std::vector<VarId> used;
    for (int b = 0; b < bins; ++b) used.push_back(m.add_binary("bin" + std::to_string(b)));
    for (std::size_t i = 0; i < items.size(); ++i) {
        LinExpr one;
        for (int b = 0; b < bins; ++b) {
            x[i].push_back(m.add_binary());
            one += LinExpr::term(x[i].back());
        }
        m.add_constraint(std::move(one), Sense::kEq, 1.0);
    }
    for (int b = 0; b < bins; ++b) {
        LinExpr load;
        for (std::size_t i = 0; i < items.size(); ++i) {
            load += LinExpr::term(x[i][static_cast<std::size_t>(b)], items[i]);
            // item in bin -> bin used
            m.add_constraint(LinExpr::term(used[static_cast<std::size_t>(b)]) -
                                 LinExpr::term(x[i][static_cast<std::size_t>(b)]),
                             Sense::kGe, 0.0);
        }
        m.add_constraint(std::move(load), Sense::kLe, 1.0);
    }
    LinExpr total;
    for (const VarId u : used) total += LinExpr::term(u);
    m.minimize(total);
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 3.0, kTol);
}

TEST(MilpSolver, InfeasibleIntegerProblem) {
    // 0.4 <= x <= 0.6, x integer -> infeasible.
    Model m;
    const VarId x = m.add_integer(0.0, 1.0, "x");
    m.add_constraint(LinExpr::term(x), Sense::kGe, 0.4);
    m.add_constraint(LinExpr::term(x), Sense::kLe, 0.6);
    m.minimize(LinExpr::term(x));
    EXPECT_EQ(solve_milp(m).status, MilpStatus::kInfeasible);
}

TEST(MilpSolver, WarmStartAccepted) {
    Model m;
    const VarId x = m.add_integer(0.0, 10.0, "x");
    m.add_constraint(LinExpr::term(x, 2.0), Sense::kLe, 7.0);
    m.maximize(LinExpr::term(x));
    MilpOptions options;
    options.warm_start = std::vector<double>{3.0};
    const MilpResult r = solve_milp(m, options);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 3.0, kTol);
}

TEST(MilpSolver, InfeasibleWarmStartIgnored) {
    Model m;
    const VarId x = m.add_integer(0.0, 10.0, "x");
    m.add_constraint(LinExpr::term(x, 2.0), Sense::kLe, 7.0);
    m.maximize(LinExpr::term(x));
    MilpOptions options;
    options.warm_start = std::vector<double>{9.0};  // violates the constraint
    const MilpResult r = solve_milp(m, options);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 3.0, kTol);
}

TEST(MilpSolver, NodeLimitReturnsIncumbentAsFeasible) {
    // A knapsack big enough to need more than one node, with a warm start so
    // an incumbent exists when the limit strikes.
    Model m;
    LinExpr weight, value;
    std::vector<double> start;
    for (int i = 0; i < 12; ++i) {
        const VarId x = m.add_binary();
        weight += LinExpr::term(x, 7.0 + i);
        value += LinExpr::term(x, 11.0 + 3 * i);
        start.push_back(0.0);
    }
    m.add_constraint(weight, Sense::kLe, 40.0);
    m.maximize(value);
    MilpOptions options;
    options.node_limit = 1;
    options.warm_start = start;
    const MilpResult r = solve_milp(m, options);
    EXPECT_EQ(r.status, MilpStatus::kFeasible);
    EXPECT_NEAR(r.objective, 0.0, kTol);  // the warm start itself
}

TEST(MilpSolver, TimeLimitZeroMeansNoBudget) {
    // time_limit_seconds <= 0 is "no wall-clock budget" everywhere (search
    // and node LPs alike), so a trivial model solves to proven optimality
    // instead of bailing out with the warm start.
    Model m;
    const VarId x = m.add_binary();
    m.maximize(LinExpr::term(x));
    MilpOptions options;
    options.time_limit_seconds = 0.0;
    options.warm_start = std::vector<double>{1.0};
    const MilpResult r = solve_milp(m, options);
    EXPECT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 1.0, kTol);
}

TEST(MilpSolver, ExpiredDeadlineReturnsIncumbentAsTimeLimit) {
    // A pre-cancelled token stops the search before its first node; the warm
    // start survives as the incumbent and the status says why the search
    // stopped — no exception anywhere.
    Model m;
    LinExpr weight, value;
    std::vector<double> start;
    for (int i = 0; i < 12; ++i) {
        const VarId x = m.add_binary();
        weight += LinExpr::term(x, 7.0 + i);
        value += LinExpr::term(x, 11.0 + 3 * i);
        start.push_back(0.0);
    }
    m.add_constraint(weight, Sense::kLe, 40.0);
    m.maximize(value);
    MilpOptions options;
    options.deadline = hermes::core::Deadline::cancellable();
    options.deadline.cancel();
    options.warm_start = start;
    const MilpResult r = solve_milp(m, options);
    EXPECT_EQ(r.status, MilpStatus::kTimeLimit);
    EXPECT_TRUE(r.has_solution());
    EXPECT_NEAR(r.objective, 0.0, kTol);  // the warm start itself
}

TEST(MilpSolver, ExpiredDeadlineWithoutIncumbentReturnsNoSolution) {
    Model m;
    LinExpr weight, value;
    for (int i = 0; i < 12; ++i) {
        const VarId x = m.add_binary();
        weight += LinExpr::term(x, 7.0 + i);
        value += LinExpr::term(x, 11.0 + 3 * i);
    }
    m.add_constraint(weight, Sense::kLe, 40.0);
    m.maximize(value);
    MilpOptions options;
    options.presolve = false;  // presolve alone can crack tiny instances
    options.deadline = hermes::core::Deadline::cancellable();
    options.deadline.cancel();
    const MilpResult r = solve_milp(m, options);
    EXPECT_EQ(r.status, MilpStatus::kNoSolution);
    EXPECT_FALSE(r.has_solution());
}

TEST(MilpSolver, UnboundedDetected) {
    Model m;
    const VarId x = m.add_integer(0.0, kInfinity, "x");
    m.maximize(LinExpr::term(x));
    EXPECT_EQ(solve_milp(m).status, MilpStatus::kUnbounded);
}

TEST(MilpSolver, MixedIntegerContinuous) {
    // max 2x + y, x binary, y continuous <= 1.5, x + y <= 2 -> x=1, y=1 -> 3.
    Model m;
    const VarId x = m.add_binary("x");
    const VarId y = m.add_continuous(0.0, 1.5, "y");
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kLe, 2.0);
    m.maximize(LinExpr::term(x, 2.0) + LinExpr::term(y));
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 3.0, kTol);
}

TEST(MilpSolver, BestBoundMatchesObjectiveWhenOptimal) {
    Model m;
    const VarId x = m.add_integer(0.0, 5.0, "x");
    m.add_constraint(LinExpr::term(x, 3.0), Sense::kLe, 10.0);
    m.maximize(LinExpr::term(x));
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.best_bound, r.objective, kTol);
}

TEST(MilpSolver, SolutionIsModelFeasible) {
    Model m;
    std::vector<VarId> xs;
    LinExpr sum;
    for (int i = 0; i < 6; ++i) {
        xs.push_back(m.add_integer(0.0, 3.0, "x" + std::to_string(i)));
        sum += LinExpr::term(xs.back(), 1.0 + 0.5 * i);
    }
    m.add_constraint(sum, Sense::kLe, 7.3);
    LinExpr obj;
    for (std::size_t i = 0; i < xs.size(); ++i) obj += LinExpr::term(xs[i], 2.0 + i);
    m.maximize(obj);
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_TRUE(m.is_feasible(r.values, 1e-6));
}

}  // namespace
}  // namespace hermes::milp
