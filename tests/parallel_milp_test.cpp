// Parallel MILP engine tests: identical objectives at every thread count on
// seeded P#1 and random instances, valid decoded deployments, exact
// single-thread reproducibility, and warm-started LP re-solves matching
// cold solves on seeded perturbed models.
#include <gtest/gtest.h>

#include <cmath>

#include "core/formulation.h"
#include "core/greedy.h"
#include "core/verifier.h"
#include "milp/solver.h"
#include "sim/testbed.h"
#include "util/rng.h"

namespace hermes::milp {
namespace {

constexpr double kTol = 1e-9;

LpOptions warm_from(const Basis* basis) {
    LpOptions options;
    options.warm_basis = basis;
    return options;
}

// Random MILP in the spirit of bench/micro_solver's random_lp: maximize c'x
// subject to Ax <= b over a mix of binary and small bounded integers.
Model random_milp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < vars; ++i) {
        xs.push_back(rng.chance(0.5)
                         ? m.add_binary()
                         : m.add_integer(0.0, static_cast<double>(rng.uniform_int(1, 4))));
    }
    for (int r = 0; r < rows; ++r) {
        LinExpr e;
        for (const VarId x : xs) e += LinExpr::term(x, rng.uniform_real(0.1, 2.0));
        m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(2.0, 8.0));
    }
    LinExpr obj;
    for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(0.5, 3.0));
    m.maximize(obj);
    return m;
}

// Random bounded LP (continuous) with a few >= rows so warm starts also
// cross the phase-1/artificial machinery.
Model random_lp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < vars; ++i) xs.push_back(m.add_continuous(0.0, 10.0));
    for (int r = 0; r < rows; ++r) {
        LinExpr e;
        for (const VarId x : xs) e += LinExpr::term(x, rng.uniform_real(0.1, 2.0));
        if (r % 4 == 3) {
            m.add_constraint(std::move(e), Sense::kGe, rng.uniform_real(0.5, 2.0));
        } else {
            m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(5.0, 50.0));
        }
    }
    LinExpr obj;
    for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(0.5, 3.0));
    m.maximize(obj);
    return m;
}

// Seeded P#1 instance: a chain-with-shortcuts TDG on a small testbed.
struct P1Instance {
    tdg::Tdg t;
    net::Network net;
};

P1Instance random_p1(std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    P1Instance inst;
    const int mats = static_cast<int>(rng.uniform_int(4, 6));
    for (int i = 0; i < mats; ++i) {
        inst.t.add_node(tdg::Mat(
            "m" + std::to_string(i), {tdg::header_field("h" + std::to_string(i), 2)},
            {tdg::Action{"a", {tdg::metadata_field("x" + std::to_string(i), 4)}}}, 16,
            rng.uniform_real(0.3, 0.6)));
        if (i > 0) {
            inst.t.add_edge(static_cast<tdg::NodeId>(i - 1),
                            static_cast<tdg::NodeId>(i), tdg::DepType::kMatch);
            inst.t.edges().back().metadata_bytes =
                static_cast<int>(rng.uniform_int(1, 6));
        }
        if (i > 1 && rng.chance(0.4)) {
            inst.t.add_edge(static_cast<tdg::NodeId>(i - 2),
                            static_cast<tdg::NodeId>(i), tdg::DepType::kAction);
            inst.t.edges().back().metadata_bytes =
                static_cast<int>(rng.uniform_int(1, 4));
        }
    }
    sim::TestbedConfig config;
    config.switch_count = static_cast<std::size_t>(rng.uniform_int(2, 3));
    config.stages = 4;
    inst.net = sim::make_testbed(config);
    return inst;
}

MilpResult solve_with_threads(const Model& m, int threads) {
    MilpOptions options;
    options.time_limit_seconds = 60.0;
    options.threads = threads;
    return solve_milp(m, options);
}

TEST(ParallelMilp, SameObjectiveAtEveryThreadCountOnRandomMilps) {
    for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
        const Model m = random_milp(12, 6, seed);
        const MilpResult one = solve_with_threads(m, 1);
        const MilpResult two = solve_with_threads(m, 2);
        const MilpResult eight = solve_with_threads(m, 8);
        ASSERT_EQ(one.status, MilpStatus::kOptimal) << "seed " << seed;
        ASSERT_EQ(two.status, MilpStatus::kOptimal) << "seed " << seed;
        ASSERT_EQ(eight.status, MilpStatus::kOptimal) << "seed " << seed;
        EXPECT_NEAR(one.objective, two.objective, kTol) << "seed " << seed;
        EXPECT_NEAR(one.objective, eight.objective, kTol) << "seed " << seed;
        EXPECT_TRUE(m.is_feasible(two.values, 1e-6)) << "seed " << seed;
        EXPECT_TRUE(m.is_feasible(eight.values, 1e-6)) << "seed " << seed;
    }
}

TEST(ParallelMilp, SameObjectiveAndValidDeploymentOnSeededP1Instances) {
    // Seeds picked to span tree sizes (15 / 32 / ~950 nodes) while staying
    // inside the time budget under ThreadSanitizer's ~10x slowdown.
    for (const std::uint64_t seed : {3u, 7u, 8u}) {
        const P1Instance inst = random_p1(seed);
        core::P1Formulation f(inst.t, inst.net, core::FormulationOptions{});
        const MilpResult one = solve_with_threads(f.model(), 1);
        const MilpResult two = solve_with_threads(f.model(), 2);
        const MilpResult eight = solve_with_threads(f.model(), 8);
        ASSERT_EQ(one.status, MilpStatus::kOptimal) << "seed " << seed;
        ASSERT_EQ(two.status, MilpStatus::kOptimal) << "seed " << seed;
        ASSERT_EQ(eight.status, MilpStatus::kOptimal) << "seed " << seed;
        EXPECT_NEAR(one.objective, two.objective, kTol) << "seed " << seed;
        EXPECT_NEAR(one.objective, eight.objective, kTol) << "seed " << seed;
        for (const MilpResult* r : {&one, &two, &eight}) {
            const core::Deployment d = f.decode(r->values);
            EXPECT_TRUE(core::verify(inst.t, inst.net, d).ok) << "seed " << seed;
        }
    }
}

TEST(ParallelMilp, SingleThreadRunsAreExactlyReproducible) {
    const Model m = random_milp(14, 7, 99);
    const MilpResult a = solve_with_threads(m, 1);
    const MilpResult b = solve_with_threads(m, 1);
    ASSERT_EQ(a.status, b.status);
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.values, b.values);
}

TEST(ParallelMilp, ThreadsZeroMeansHardwareConcurrency) {
    const Model m = random_milp(10, 5, 5);
    const MilpResult hw = solve_with_threads(m, 0);
    const MilpResult one = solve_with_threads(m, 1);
    ASSERT_EQ(hw.status, MilpStatus::kOptimal);
    EXPECT_NEAR(hw.objective, one.objective, kTol);
}

TEST(ParallelMilp, WarmBasisOnAndOffAgree) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        const Model m = random_milp(12, 6, seed);
        MilpOptions warm;
        warm.threads = 2;
        MilpOptions cold = warm;
        cold.warm_lp_basis = false;
        const MilpResult rw = solve_milp(m, warm);
        const MilpResult rc = solve_milp(m, cold);
        ASSERT_EQ(rw.status, MilpStatus::kOptimal);
        ASSERT_EQ(rc.status, MilpStatus::kOptimal);
        EXPECT_NEAR(rw.objective, rc.objective, kTol) << "seed " << seed;
    }
}

TEST(WarmStartLp, FiftySeededPerturbedModelsMatchColdSolves) {
    int optimal_pairs = 0;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        util::SplitMix64 rng(seed * 7919 + 1);
        Model base = random_lp(10, 8, seed);
        const LpResult parent = solve_lp(base);
        ASSERT_EQ(parent.status, LpStatus::kOptimal) << "seed " << seed;
        ASSERT_FALSE(parent.basis.empty());

        // Branch-like perturbation: tighten one variable's bound around its
        // LP value (occasionally into infeasibility, which both paths must
        // classify identically).
        const auto j = static_cast<std::size_t>(rng.uniform_int(0, 9));
        const double x = parent.values[j];
        if (rng.chance(0.5)) {
            base.set_upper(static_cast<VarId>(j), std::floor(x));
        } else {
            base.set_lower(static_cast<VarId>(j), std::floor(x) + 1.0);
        }

        const LpResult cold = solve_lp(base);
        const LpResult warm = solve_lp(base, warm_from(&parent.basis));
        ASSERT_EQ(warm.status, cold.status) << "seed " << seed;
        if (cold.status != LpStatus::kOptimal) continue;
        ++optimal_pairs;
        EXPECT_NEAR(warm.objective, cold.objective, kTol) << "seed " << seed;
        EXPECT_TRUE(base.is_feasible(warm.values, 1e-6)) << "seed " << seed;
    }
    // The perturbations are mild: most pairs must stay solvable for the
    // equality check above to mean anything.
    EXPECT_GE(optimal_pairs, 25);
}

TEST(WarmStartLp, IncompatibleBasisDegradesToColdPath) {
    const Model a = random_lp(10, 8, 123);
    const Model b = random_lp(6, 4, 321);  // different shape entirely
    const LpResult pa = solve_lp(a);
    ASSERT_EQ(pa.status, LpStatus::kOptimal);
    const LpResult cold = solve_lp(b);
    const LpResult warm = solve_lp(b, warm_from(&pa.basis));
    ASSERT_EQ(warm.status, cold.status);
    EXPECT_NEAR(warm.objective, cold.objective, kTol);
}

TEST(WarmStartLp, RepeatedReSolvesStayExact) {
    // Chain of bound tightenings, each warm started from the previous basis,
    // mirrors a branch-and-bound dive.
    Model m = random_lp(12, 10, 2024);
    LpResult prev = solve_lp(m);
    ASSERT_EQ(prev.status, LpStatus::kOptimal);
    for (int depth = 0; depth < 5; ++depth) {
        const auto j = static_cast<std::size_t>(depth);
        m.set_upper(static_cast<VarId>(j), std::max(0.0, std::floor(prev.values[j])));
        const LpResult cold = solve_lp(m);
        const LpResult warm = solve_lp(m, warm_from(&prev.basis));
        ASSERT_EQ(warm.status, cold.status) << "depth " << depth;
        if (cold.status != LpStatus::kOptimal) break;
        EXPECT_NEAR(warm.objective, cold.objective, kTol) << "depth " << depth;
        prev = warm;
    }
}

}  // namespace
}  // namespace hermes::milp
