// Algorithm 1 tests: A(a,b) per dependency type, header-field exclusion,
// deduplication, and whole-pipeline analysis.
#include <gtest/gtest.h>

#include "tdg/analyzer.h"

namespace hermes::tdg {
namespace {

Mat writer(const std::string& name, std::vector<Field> writes) {
    return Mat(name, {header_field("h_" + name, 2)}, {Action{"w", std::move(writes)}}, 16,
               0.1);
}

TEST(Analyzer, MatchDependencyCountsUpstreamMetadata) {
    const Mat a = writer("a", {metadata_field("meta.x", 4), metadata_field("meta.y", 2)});
    const Mat b = writer("b", {metadata_field("meta.z", 1)});
    EXPECT_EQ(edge_metadata_bytes(a, b, DepType::kMatch), 6);
}

TEST(Analyzer, MatchDependencyIgnoresHeaderFields) {
    // Header fields already ride in the packet: zero extra bytes.
    const Mat a = writer("a", {header_field("ipv4.ttl", 1), metadata_field("meta.x", 4)});
    const Mat b = writer("b", {});
    EXPECT_EQ(edge_metadata_bytes(a, b, DepType::kMatch), 4);
}

TEST(Analyzer, ActionDependencyUnionOfBothSides) {
    const Mat a = writer("a", {metadata_field("meta.x", 4)});
    const Mat b = writer("b", {metadata_field("meta.y", 2)});
    EXPECT_EQ(edge_metadata_bytes(a, b, DepType::kAction), 6);
}

TEST(Analyzer, ActionDependencySharedFieldCountedOnce) {
    const Mat a = writer("a", {metadata_field("meta.shared", 4)});
    const Mat b = writer("b", {metadata_field("meta.shared", 4)});
    EXPECT_EQ(edge_metadata_bytes(a, b, DepType::kAction), 4);
}

TEST(Analyzer, ReverseMatchDeliversNothing) {
    const Mat a = writer("a", {metadata_field("meta.x", 4)});
    const Mat b = writer("b", {metadata_field("meta.y", 2)});
    EXPECT_EQ(edge_metadata_bytes(a, b, DepType::kReverseMatch), 0);
}

TEST(Analyzer, SuccessorCountsUpstreamMetadata) {
    const Mat a = writer("a", {metadata_field("meta.flag", 1)});
    const Mat b = writer("b", {metadata_field("meta.y", 2)});
    EXPECT_EQ(edge_metadata_bytes(a, b, DepType::kSuccessor), 1);
}

TEST(Analyzer, AnalyzeAnnotatesEveryEdge) {
    Tdg t;
    const NodeId a = t.add_node(writer("a", {metadata_field("meta.a", 4)}));
    const NodeId b = t.add_node(writer("b", {metadata_field("meta.b", 6)}));
    const NodeId c = t.add_node(writer("c", {metadata_field("meta.c", 12)}));
    t.add_edge(a, b, DepType::kMatch);
    t.add_edge(b, c, DepType::kReverseMatch);
    t.add_edge(a, c, DepType::kAction);
    analyze(t);
    EXPECT_EQ(t.find_edge(a, b)->metadata_bytes, 4);
    EXPECT_EQ(t.find_edge(b, c)->metadata_bytes, 0);
    EXPECT_EQ(t.find_edge(a, c)->metadata_bytes, 16);
    EXPECT_EQ(t.total_metadata_bytes(), 20);
}

TEST(Analyzer, AnalyzeProgramsMergesThenAnnotates) {
    auto make_sketch = [](const std::string& id) {
        Tdg t;
        const NodeId h = t.add_node(Mat("hash", {header_field("5t", 13)},
                                        {Action{"h", {metadata_field("meta.idx", 4)}}},
                                        16, 0.1));
        const NodeId u = t.add_node(writer("update_" + id,
                                           {metadata_field("meta." + id, 4)}));
        t.add_edge(h, u, DepType::kMatch);
        return t;
    };
    const Tdg merged = analyze_programs({make_sketch("cm"), make_sketch("bloom")});
    EXPECT_EQ(merged.node_count(), 3u);  // hash deduplicated
    for (const Edge& e : merged.edges()) {
        EXPECT_EQ(e.metadata_bytes, 4);  // each carries the 4-byte index
    }
}

TEST(Analyzer, AnalyzeProgramsEmptyThrows) {
    EXPECT_THROW((void)analyze_programs({}), std::invalid_argument);
}

TEST(Analyzer, TableOneScenario) {
    // An INT-style source->transit edge carrying switch id + timestamps:
    // 4 + 12 = 16 bytes, matching the Table I arithmetic.
    const Mat source = writer("int_source", {common_metadata::switch_identifier(),
                                             common_metadata::timestamps()});
    const Mat transit = writer("int_transit", {common_metadata::queue_lengths()});
    EXPECT_EQ(edge_metadata_bytes(source, transit, DepType::kMatch), 16);
    EXPECT_EQ(edge_metadata_bytes(source, transit, DepType::kAction), 22);
}

}  // namespace
}  // namespace hermes::tdg
