#include <gtest/gtest.h>

#include "tdg/tdg.h"

namespace hermes::tdg {
namespace {

Mat mat(const std::string& name, double resource = 0.1) {
    return Mat(name, {header_field("hdr." + name, 2)},
               {Action{"act_" + name, {metadata_field("meta." + name, 4)}}}, 16, resource);
}

Tdg diamond() {
    // a -> b, a -> c, b -> d, c -> d
    Tdg t;
    const NodeId a = t.add_node(mat("a"));
    const NodeId b = t.add_node(mat("b"));
    const NodeId c = t.add_node(mat("c"));
    const NodeId d = t.add_node(mat("d"));
    t.add_edge(a, b, DepType::kMatch);
    t.add_edge(a, c, DepType::kAction);
    t.add_edge(b, d, DepType::kMatch);
    t.add_edge(c, d, DepType::kSuccessor);
    return t;
}

TEST(Tdg, AddNodesAndEdges) {
    const Tdg t = diamond();
    EXPECT_EQ(t.node_count(), 4u);
    EXPECT_EQ(t.edge_count(), 4u);
    EXPECT_EQ(t.node(0).name(), "a");
}

TEST(Tdg, EdgeValidation) {
    Tdg t;
    const NodeId a = t.add_node(mat("a"));
    const NodeId b = t.add_node(mat("b"));
    EXPECT_THROW(t.add_edge(a, 9, DepType::kMatch), std::out_of_range);
    EXPECT_THROW(t.add_edge(a, a, DepType::kMatch), std::invalid_argument);
    t.add_edge(a, b, DepType::kMatch);
    EXPECT_THROW(t.add_edge(a, b, DepType::kAction), std::invalid_argument);
}

TEST(Tdg, FindEdge) {
    const Tdg t = diamond();
    const auto e = t.find_edge(0, 1);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->type, DepType::kMatch);
    EXPECT_FALSE(t.find_edge(1, 0).has_value());
    EXPECT_FALSE(t.find_edge(0, 3).has_value());
}

TEST(Tdg, SuccessorsPredecessors) {
    const Tdg t = diamond();
    EXPECT_EQ(t.successors(0), (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(t.predecessors(3), (std::vector<NodeId>{1, 2}));
    EXPECT_TRUE(t.predecessors(0).empty());
    EXPECT_TRUE(t.successors(3).empty());
}

TEST(Tdg, TopologicalOrderRespectsEdges) {
    const Tdg t = diamond();
    const auto order = t.topological_order();
    ASSERT_EQ(order.size(), 4u);
    std::vector<std::size_t> pos(4);
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const Edge& e : t.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

TEST(Tdg, TopologicalOrderDeterministic) {
    // Independent nodes come out in id order (min-heap tie-break).
    Tdg t;
    t.add_node(mat("x"));
    t.add_node(mat("y"));
    t.add_node(mat("z"));
    EXPECT_EQ(t.topological_order(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(Tdg, CycleDetected) {
    Tdg t;
    const NodeId a = t.add_node(mat("a"));
    const NodeId b = t.add_node(mat("b"));
    const NodeId c = t.add_node(mat("c"));
    t.add_edge(a, b, DepType::kMatch);
    t.add_edge(b, c, DepType::kMatch);
    t.add_edge(c, a, DepType::kMatch);
    EXPECT_FALSE(t.is_dag());
    EXPECT_THROW((void)t.topological_order(), std::runtime_error);
}

TEST(Tdg, EmptyGraphIsDag) {
    const Tdg t;
    EXPECT_TRUE(t.is_dag());
    EXPECT_TRUE(t.topological_order().empty());
}

TEST(Tdg, TotalResourceUnits) {
    Tdg t;
    t.add_node(mat("a", 0.25));
    t.add_node(mat("b", 0.5));
    EXPECT_DOUBLE_EQ(t.total_resource_units(), 0.75);
}

TEST(Tdg, TotalMetadataBytesAfterAnnotation) {
    Tdg t = diamond();
    t.edges()[0].metadata_bytes = 4;
    t.edges()[2].metadata_bytes = 6;
    EXPECT_EQ(t.total_metadata_bytes(), 10);
}

TEST(Tdg, NodeByName) {
    const Tdg t = diamond();
    EXPECT_EQ(t.node_by_name("c"), 2u);
    EXPECT_THROW((void)t.node_by_name("nope"), std::out_of_range);
}

TEST(Tdg, NodeByNameAmbiguous) {
    Tdg t;
    t.add_node(mat("dup"));
    t.add_node(mat("dup"));
    EXPECT_THROW((void)t.node_by_name("dup"), std::out_of_range);
}

TEST(Tdg, DepTypeNames) {
    EXPECT_STREQ(to_string(DepType::kMatch), "match");
    EXPECT_STREQ(to_string(DepType::kAction), "action");
    EXPECT_STREQ(to_string(DepType::kReverseMatch), "reverse-match");
    EXPECT_STREQ(to_string(DepType::kSuccessor), "successor");
}

}  // namespace
}  // namespace hermes::tdg
