#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace hermes::util {
namespace {

// ---- SplitMix64 -----------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
    SplitMix64 a(42), b(42), c(43);
    EXPECT_EQ(a(), b());
    SplitMix64 a2(42);
    EXPECT_NE(a2(), c());
}

TEST(Rng, UniformIntWithinRange) {
    SplitMix64 rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntSingleton) {
    SplitMix64 rng(1);
    EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntBadRangeThrows) {
    SplitMix64 rng(1);
    EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
    SplitMix64 rng(2);
    bool seen[4] = {false, false, false, false};
    for (int i = 0; i < 200; ++i) seen[rng.uniform_int(0, 3)] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Rng, UniformRealWithinRange) {
    SplitMix64 rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform_real(1.5, 2.5);
        EXPECT_GE(v, 1.5);
        EXPECT_LT(v, 2.5);
    }
}

TEST(Rng, ChanceExtremes) {
    SplitMix64 rng(4);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceRoughlyCalibrated) {
    SplitMix64 rng(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
    SplitMix64 rng(6);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinct) {
    SplitMix64 rng(7);
    const auto sample = rng.sample_indices(10, 4);
    ASSERT_EQ(sample.size(), 4u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 4u);
    for (const auto i : sample) EXPECT_LT(i, 10u);
}

TEST(Rng, SampleTooManyThrows) {
    SplitMix64 rng(8);
    EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, PickFromEmptyThrows) {
    SplitMix64 rng(9);
    const std::vector<int> empty;
    EXPECT_THROW((void)rng.pick(empty), std::invalid_argument);
}

// ---- Stats ----------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.138089935, 1e-6);  // sample stddev
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, EmptyStatsAreZero) {
    RunningStats s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, SingleSampleVarianceZero) {
    RunningStats s;
    s.add(3.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.mean(), 3.0);
}

TEST(Stats, VectorHelpers) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(mean(xs), 2.5, 1e-12);
    EXPECT_NEAR(stddev(xs), 1.2909944487, 1e-6);
}

TEST(Stats, PercentileInterpolates) {
    std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_NEAR(percentile(xs, 0), 10.0, 1e-12);
    EXPECT_NEAR(percentile(xs, 100), 40.0, 1e-12);
    EXPECT_NEAR(percentile(xs, 50), 25.0, 1e-12);
}

TEST(Stats, PercentileValidation) {
    EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
    EXPECT_THROW((void)percentile({1.0}, 101), std::invalid_argument);
}

// ---- Strings ----------------------------------------------------------------

TEST(Strings, TrimBothEnds) {
    EXPECT_EQ(trim("  hello \t"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitDropsEmptyPieces) {
    const auto parts = split("a, b,, c ,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTrip) {
    EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
    EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, StartsWith) {
    EXPECT_TRUE(starts_with("hermes", "her"));
    EXPECT_FALSE(starts_with("her", "hermes"));
}

TEST(Strings, ParseInt) {
    EXPECT_EQ(parse_int(" 42 "), 42);
    EXPECT_EQ(parse_int("-7"), -7);
    EXPECT_THROW((void)parse_int("4x"), std::invalid_argument);
    EXPECT_THROW((void)parse_int(""), std::invalid_argument);
}

TEST(Strings, ParseDouble) {
    EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
    EXPECT_THROW((void)parse_double("abc"), std::invalid_argument);
    EXPECT_THROW((void)parse_double("1.5x"), std::invalid_argument);
}

// ---- Table ------------------------------------------------------------------

TEST(Table, RowCellCountEnforced) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
    t.add_row({"1", "2"});
    EXPECT_EQ(t.row_count(), 1u);
    EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, EmptyHeadersRejected) {
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, PrintAligned) {
    Table t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer", "22"});
    std::ostringstream os;
    t.print(os, "demo");
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, CsvEscaping) {
    Table t({"a"});
    t.add_row({"plain"});
    t.add_row({"has,comma"});
    t.add_row({"has\"quote"});
    std::ostringstream os;
    t.write_csv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatting) {
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(std::int64_t{42}), "42");
}

}  // namespace
}  // namespace hermes::util
