// Direct tests of the sparse LU basis kernel (milp/lu.h): solve residuals
// against an explicitly assembled basis, Forrest-Tomlin updates held
// equivalent to fresh factorizations across long pivot chains, rejection and
// recovery on singular/duplicate-claimed bases, pivot-order hint replay (the
// warm-start snapshot), and the LU simplex held equivalent to the retained
// eta-file kernel on the randomized LP grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "milp/lu.h"
#include "milp/simplex.h"
#include "util/rng.h"

namespace hermes::milp {
namespace {

constexpr double kTol = 1e-6;

// Same generator family as simplex_equivalence_test: mixed senses, sparse
// rows, signed coefficients, finite and infinite uppers.
Model random_lp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < vars; ++i) {
        const double u = rng.chance(0.25) ? kInfinity : rng.uniform_real(1.0, 10.0);
        xs.push_back(m.add_continuous(0.0, u));
    }
    for (int r = 0; r < rows; ++r) {
        LinExpr e;
        for (const VarId x : xs) {
            if (rng.chance(0.4)) continue;
            e += LinExpr::term(x, rng.uniform_real(-2.0, 2.0));
        }
        if (e.empty()) e += LinExpr::term(xs[0]);
        const double roll = rng.uniform_real(0.0, 1.0);
        if (roll < 0.55) {
            m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(1.0, 20.0));
        } else if (roll < 0.85) {
            m.add_constraint(std::move(e), Sense::kGe, rng.uniform_real(-10.0, 1.0));
        } else {
            m.add_constraint(std::move(e), Sense::kEq, rng.uniform_real(0.0, 5.0));
        }
    }
    LinExpr obj;
    for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(-1.0, 3.0));
    if (rng.chance(0.5)) {
        m.maximize(std::move(obj));
    } else {
        m.minimize(std::move(obj));
    }
    return m;
}

Model feasible_random_lp(int vars, int rows, std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < vars; ++i) xs.push_back(m.add_continuous(0.0, 10.0));
    for (int r = 0; r < rows; ++r) {
        LinExpr e;
        for (const VarId x : xs) e += LinExpr::term(x, rng.uniform_real(0.1, 2.0));
        if (r % 4 == 3) {
            m.add_constraint(std::move(e), Sense::kGe, rng.uniform_real(0.5, 2.0));
        } else {
            m.add_constraint(std::move(e), Sense::kLe, rng.uniform_real(5.0, 50.0));
        }
    }
    LinExpr obj;
    for (const VarId x : xs) obj += LinExpr::term(x, rng.uniform_real(0.5, 3.0));
    m.maximize(std::move(obj));
    return m;
}

// Column of variable `var` over rows: structural columns come from the CSC
// arrays, logical n+i is the unit vector on row i (the loading rule
// LuFactor::factorize applies).
std::vector<double> column_of(const LpContext& ctx, std::int32_t var) {
    std::vector<double> col(ctx.rows(), 0.0);
    const auto n = static_cast<std::int32_t>(ctx.structurals());
    if (var < n) {
        const auto v = static_cast<std::size_t>(var);
        for (auto k = ctx.col_start()[v]; k < ctx.col_start()[v + 1]; ++k) {
            col[static_cast<std::size_t>(ctx.row_idx()[static_cast<std::size_t>(k)])] +=
                ctx.values()[static_cast<std::size_t>(k)];
        }
    } else {
        col[static_cast<std::size_t>(var - n)] = 1.0;
    }
    return col;
}

// max_i |(B x)_i - a_i| where B's slot j holds column basic[j] and x is
// slot-indexed — the FTRAN residual against the explicitly assembled basis.
double ftran_residual(const LpContext& ctx, const std::vector<std::int32_t>& basic,
                      const std::vector<double>& x_slots,
                      const std::vector<double>& a_rows) {
    std::vector<double> bx(ctx.rows(), 0.0);
    for (std::size_t j = 0; j < basic.size(); ++j) {
        if (x_slots[j] == 0.0) continue;
        const std::vector<double> col = column_of(ctx, basic[j]);
        for (std::size_t i = 0; i < bx.size(); ++i) bx[i] += x_slots[j] * col[i];
    }
    double r = 0.0;
    for (std::size_t i = 0; i < bx.size(); ++i) r = std::max(r, std::abs(bx[i] - a_rows[i]));
    return r;
}

// max_j |(B^T rho)_j - c_j| with rho row-indexed and c slot-indexed.
double btran_residual(const LpContext& ctx, const std::vector<std::int32_t>& basic,
                      const std::vector<double>& rho_rows,
                      const std::vector<double>& c_slots) {
    double r = 0.0;
    for (std::size_t j = 0; j < basic.size(); ++j) {
        const std::vector<double> col = column_of(ctx, basic[j]);
        double dot = 0.0;
        for (std::size_t i = 0; i < col.size(); ++i) dot += col[i] * rho_rows[i];
        r = std::max(r, std::abs(dot - c_slots[j]));
    }
    return r;
}

// An optimal basis from the production solve — guaranteed nonsingular and
// mixed structural/logical, which is what the kernel sees in practice.
std::vector<std::int32_t> optimal_basic(const Model& m) {
    const LpResult r = solve_lp(m);
    EXPECT_EQ(r.status, LpStatus::kOptimal);
    return r.basis.basic;
}

TEST(LuKernel, SolvesSatisfyExplicitBasisResiduals) {
    for (std::uint64_t seed : {3u, 17u, 42u}) {
        const Model m = feasible_random_lp(12, 10, seed);
        const LpContext ctx(m);
        const std::vector<std::int32_t> basic = optimal_basic(m);
        ASSERT_EQ(basic.size(), ctx.rows());

        LuFactor lu;
        ASSERT_TRUE(lu.factorize(ctx, basic));
        ASSERT_TRUE(lu.valid());
        EXPECT_EQ(lu.dim(), ctx.rows());

        std::vector<double> x(ctx.rows(), 0.0), rho(ctx.rows(), 0.0);
        std::vector<std::int32_t> xlist, rholist;

        // FTRAN of every structural and logical column.
        const auto total = static_cast<std::int32_t>(ctx.structurals() + ctx.rows());
        for (std::int32_t var = 0; var < total; ++var) {
            lu.ftran_column(ctx, var, x, xlist);
            EXPECT_LT(ftran_residual(ctx, basic, x, column_of(ctx, var)), 1e-8)
                << "seed " << seed << " var " << var;
        }
        // BTRAN of every unit vector (the Devex pivot-row solve).
        for (std::size_t slot = 0; slot < basic.size(); ++slot) {
            lu.btran_unit(slot, rho, rholist);
            std::vector<double> e(basic.size(), 0.0);
            e[slot] = 1.0;
            EXPECT_LT(btran_residual(ctx, basic, rho, e), 1e-8)
                << "seed " << seed << " slot " << slot;
        }
        // Every solve above had a sparse right-hand side; the hypersparse
        // path must actually serve some of them.
        EXPECT_GT(lu.stats().hyper_solves + lu.stats().dense_solves, 0);
        EXPECT_GT(lu.stats().hyper_solves, 0);
        EXPECT_GT(lu.stats().fill_nnz, 0.0);
        EXPECT_GT(lu.stats().basis_nnz, 0.0);
    }
}

TEST(LuKernel, BtranSeedsMatchesDenseWithDuplicateAccumulation) {
    const Model m = feasible_random_lp(10, 8, 5);
    const LpContext ctx(m);
    const std::vector<std::int32_t> basic = optimal_basic(m);
    LuFactor lu;
    ASSERT_TRUE(lu.factorize(ctx, basic));

    // Sparse phase-1-style cost: +-1 on a few slots, one slot repeated (the
    // contract says duplicates accumulate).
    const std::vector<std::int32_t> slots = {0, 3, 5, 3};
    const std::vector<double> vals = {1.0, -1.0, 1.0, -0.5};
    std::vector<double> c(basic.size(), 0.0);
    for (std::size_t k = 0; k < slots.size(); ++k) {
        c[static_cast<std::size_t>(slots[k])] += vals[k];
    }

    std::vector<double> rho(ctx.rows(), 0.0), dense;
    std::vector<std::int32_t> rholist;
    lu.btran_seeds(slots, vals, rho, rholist);
    lu.btran_dense(c, dense);
    for (std::size_t i = 0; i < rho.size(); ++i) {
        EXPECT_NEAR(rho[i], dense[i], 1e-9) << "row " << i;
    }
    EXPECT_LT(btran_residual(ctx, basic, rho, c), 1e-8);
}

TEST(LuKernel, ForrestTomlinChainMatchesFreshFactorization) {
    const Model m = random_lp(14, 12, 9);
    const LpContext ctx(m);
    std::vector<std::int32_t> basic = optimal_basic(m);
    const std::size_t rows = ctx.rows();
    ASSERT_EQ(basic.size(), rows);

    LuFactor lu;
    ASSERT_TRUE(lu.factorize(ctx, basic));

    const auto total = static_cast<std::int32_t>(ctx.structurals() + rows);
    std::vector<std::uint8_t> in_basis(static_cast<std::size_t>(total), 0);
    for (const std::int32_t v : basic) in_basis[static_cast<std::size_t>(v)] = 1;

    std::vector<double> x(rows, 0.0);
    std::vector<std::int32_t> xlist;
    util::SplitMix64 rng(0xfeedULL);
    int accepted = 0;
    std::int32_t probe = 0;
    for (int step = 0; step < 120 && accepted < 24; ++step) {
        // Next nonbasic variable whose FTRAN offers a healthy pivot.
        probe = (probe + 1) % total;
        if (in_basis[static_cast<std::size_t>(probe)]) continue;
        lu.ftran_column(ctx, probe, x, xlist);
        std::size_t slot = 0;
        double best = 0.0;
        for (std::size_t j = 0; j < rows; ++j) {
            if (std::abs(x[j]) > best) {
                best = std::abs(x[j]);
                slot = j;
            }
        }
        if (best < 0.3) continue;  // keep the chain well conditioned
        if (!lu.update(slot)) continue;  // rejected update leaves the factor intact
        in_basis[static_cast<std::size_t>(basic[slot])] = 0;
        in_basis[static_cast<std::size_t>(probe)] = 1;
        basic[slot] = probe;
        ++accepted;

        // The updated factor must still solve against the explicit new basis...
        std::vector<std::int32_t> rl;
        std::vector<double> rho(rows, 0.0);
        lu.ftran_column(ctx, basic[slot], x, xlist);
        EXPECT_LT(ftran_residual(ctx, basic, x, column_of(ctx, basic[slot])), 1e-7)
            << "step " << step;
        lu.btran_unit(slot, rho, rl);
        std::vector<double> e(rows, 0.0);
        e[slot] = 1.0;
        EXPECT_LT(btran_residual(ctx, basic, rho, e), 1e-7) << "step " << step;

        // ...and agree with a from-scratch factorization on a dense solve.
        LuFactor fresh;
        ASSERT_TRUE(fresh.factorize(ctx, basic)) << "step " << step;
        std::vector<double> b(rows), b2, xa, xb;
        for (std::size_t i = 0; i < rows; ++i) b[i] = rng.uniform_real(-1.0, 1.0);
        b2 = b;
        lu.ftran_dense(b, xa);
        fresh.ftran_dense(b2, xb);
        for (std::size_t j = 0; j < rows; ++j) {
            EXPECT_NEAR(xa[j], xb[j], 1e-7 * (1.0 + std::abs(xb[j])))
                << "step " << step << " slot " << j;
        }
    }
    // The chain must have exercised a real run of updates, all
    // Forrest-Tomlin (no intervening refactorization).
    EXPECT_GE(accepted, 8);
    EXPECT_EQ(lu.stats().ft_updates, accepted);
    EXPECT_EQ(lu.stats().refactorizations, 1);
    EXPECT_GT(lu.ops(), 0);
}

TEST(LuKernel, RejectsDuplicateAndSingularBasesThenRecovers) {
    // x + y <= 1 and 2x + 2y <= 4: the columns of x and y are proportional.
    Model m;
    const VarId x = m.add_continuous(0.0, 5.0);
    const VarId y = m.add_continuous(0.0, 5.0);
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kLe, 1.0);
    m.add_constraint(LinExpr::term(x, 2.0) + LinExpr::term(y, 2.0), Sense::kLe, 4.0);
    m.maximize(LinExpr::term(x));
    const LpContext ctx(m);
    const auto n = static_cast<std::int32_t>(ctx.structurals());

    LuFactor lu;
    // Duplicate claim: the same variable in both slots.
    EXPECT_FALSE(lu.factorize(ctx, std::vector<std::int32_t>{0, 0}));
    EXPECT_FALSE(lu.valid());
    // Structurally singular: two proportional columns.
    EXPECT_FALSE(lu.factorize(ctx, std::vector<std::int32_t>{0, 1}));
    EXPECT_FALSE(lu.valid());
    // The same object recovers on a good basis.
    const std::vector<std::int32_t> logical = {n, n + 1};
    ASSERT_TRUE(lu.factorize(ctx, logical));
    EXPECT_TRUE(lu.valid());
    std::vector<double> v(2, 0.0);
    std::vector<std::int32_t> vlist;
    lu.ftran_column(ctx, 0, v, vlist);
    EXPECT_LT(ftran_residual(ctx, logical, v, column_of(ctx, 0)), 1e-12);
}

TEST(LuKernel, PivotOrderHintReplaysAndBadHintsFallBack) {
    const Model m = feasible_random_lp(12, 10, 21);
    const LpContext ctx(m);
    const std::vector<std::int32_t> basic = optimal_basic(m);

    LuFactor first;
    ASSERT_TRUE(first.factorize(ctx, basic));
    std::vector<std::int32_t> slot_out, row_out;
    first.export_pivot_order(slot_out, row_out);
    ASSERT_EQ(slot_out.size(), basic.size());
    ASSERT_EQ(row_out.size(), basic.size());

    // Replaying the exported order must succeed and solve identically.
    LuFactor replay;
    ASSERT_TRUE(replay.factorize(ctx, basic, slot_out, row_out));
    std::vector<double> b(basic.size()), b2, xa, xb;
    util::SplitMix64 rng(77);
    for (auto& e : b) e = rng.uniform_real(-1.0, 1.0);
    b2 = b;
    first.ftran_dense(b, xa);
    replay.ftran_dense(b2, xb);
    for (std::size_t j = 0; j < xa.size(); ++j) {
        EXPECT_NEAR(xa[j], xb[j], 1e-9 * (1.0 + std::abs(xa[j]))) << "slot " << j;
    }

    // A corrupted order (out-of-range row) must refuse the replay...
    std::vector<std::int32_t> bad_row = row_out;
    bad_row[0] = -1;
    LuFactor corrupt;
    EXPECT_FALSE(corrupt.factorize(ctx, basic, slot_out, bad_row));
    // ...and the standard retry-without-hint path must then succeed.
    ASSERT_TRUE(corrupt.factorize(ctx, basic));
    EXPECT_TRUE(corrupt.valid());
}

TEST(LuKernel, WarmReloadRoundTripsThroughExportedPivotOrder) {
    Model m = feasible_random_lp(12, 10, 33);
    const LpResult cold = solve_lp(m);
    ASSERT_EQ(cold.status, LpStatus::kOptimal);
    // The LU kernel's basis carries the pivot order snapshot.
    ASSERT_EQ(cold.basis.pivot_slot.size(), cold.basis.basic.size());
    ASSERT_EQ(cold.basis.pivot_row.size(), cold.basis.basic.size());

    // Re-solving the same model warm must accept the basis outright.
    LpOptions warm_options;
    warm_options.warm_basis = &cold.basis;
    const LpResult same = solve_lp(m, warm_options);
    ASSERT_EQ(same.status, LpStatus::kOptimal);
    EXPECT_TRUE(same.warm_used);
    EXPECT_NEAR(same.objective, cold.objective, kTol * (1.0 + std::abs(cold.objective)));

    // A branch-style bound change keeps the column space, so the warm reload
    // still replays; the result must match a cold solve of the tightened model.
    m.set_upper(static_cast<VarId>(0), std::max(0.0, cold.values[0] - 0.5));
    const LpResult warm = solve_lp(m, warm_options);
    const LpResult fresh = solve_lp(m);
    ASSERT_EQ(warm.status, fresh.status);
    if (fresh.status == LpStatus::kOptimal) {
        EXPECT_NEAR(warm.objective, fresh.objective,
                    kTol * (1.0 + std::abs(fresh.objective)));
    }
}

TEST(LuKernel, FactorCountersSurfaceThroughLpResult) {
    const Model m = feasible_random_lp(14, 12, 55);
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    // The lp.factor_* / lp.pricing_* observability surface drains these; a
    // solve that pivots at all must have refactorized at least once and
    // priced something.
    EXPECT_GT(r.factor.refactorizations, 0);
    EXPECT_GT(r.factor.hyper_solves + r.factor.dense_solves, 0);
    EXPECT_GT(r.factor.fill_nnz, 0.0);
    EXPECT_GT(r.factor.basis_nnz, 0.0);
    EXPECT_GT(r.pricing_hits + r.pricing_rebuilds, 0);
}

TEST(LuKernel, DevexLuAgreesWithEtaKernelOnRandomGrid) {
    int optimal = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const Model m = random_lp(6 + static_cast<int>(seed % 7),
                                  5 + static_cast<int>(seed % 5), seed);
        const LpContext ctx(m);
        LpOptions lu_opts;
        LpOptions eta_opts;
        eta_opts.use_eta_basis = true;
        const LpResult lu =
            ctx.solve(ctx.model_lower(), ctx.model_upper(), lu_opts);
        const LpResult eta =
            ctx.solve(ctx.model_lower(), ctx.model_upper(), eta_opts);
        ASSERT_EQ(lu.status, eta.status) << "seed " << seed;
        if (lu.status != LpStatus::kOptimal) continue;
        ++optimal;
        EXPECT_NEAR(lu.objective, eta.objective,
                    kTol * (1.0 + std::abs(eta.objective)))
            << "seed " << seed;
        EXPECT_TRUE(m.is_feasible(lu.values, 1e-5)) << "seed " << seed;
        // The eta kernel must report no LU factor activity.
        EXPECT_EQ(eta.factor.refactorizations, 0) << "seed " << seed;
    }
    EXPECT_GE(optimal, 15);
}

}  // namespace
}  // namespace hermes::milp
