#include <gtest/gtest.h>

#include "core/deployment.h"

namespace hermes::core {
namespace {

using tdg::DepType;
using tdg::NodeId;

tdg::Mat mat(const std::string& name, double resource) {
    return tdg::Mat(name, {tdg::header_field("h_" + name, 2)},
                    {tdg::Action{"a", {tdg::metadata_field("m_" + name, 4)}}}, 16,
                    resource);
}

// chain a->b->c->d with configurable resources
tdg::Tdg chain(const std::vector<double>& resources) {
    tdg::Tdg t;
    for (std::size_t i = 0; i < resources.size(); ++i) {
        t.add_node(mat("n" + std::to_string(i), resources[i]));
    }
    for (std::size_t i = 1; i < resources.size(); ++i) {
        t.add_edge(i - 1, i, DepType::kMatch);
    }
    return t;
}

TEST(Deployment, SwitchOfAndOccupied) {
    Deployment d;
    d.placements = {{2, 0}, {2, 1}, {5, 0}};
    EXPECT_EQ(d.switch_of(0), 2u);
    EXPECT_EQ(d.occupied_switches(), (std::vector<net::SwitchId>{2, 5}));
    EXPECT_THROW((void)d.switch_of(3), std::out_of_range);
}

TEST(Deployment, MatsOnSortsByStage) {
    Deployment d;
    d.placements = {{1, 3}, {1, 0}, {0, 0}, {1, 0}};
    EXPECT_EQ(d.mats_on(1), (std::vector<NodeId>{1, 3, 0}));
    EXPECT_EQ(d.mats_on(0), (std::vector<NodeId>{2}));
    EXPECT_TRUE(d.mats_on(9).empty());
}

TEST(AssignStages, RespectsDependencies) {
    const tdg::Tdg t = chain({0.4, 0.4, 0.4});
    const auto stages = assign_stages(t, {0, 1, 2}, 4, 1.0);
    ASSERT_TRUE(stages.has_value());
    EXPECT_LT((*stages)[0], (*stages)[1]);
    EXPECT_LT((*stages)[1], (*stages)[2]);
}

TEST(AssignStages, PacksIndependentMatsIntoOneStage) {
    tdg::Tdg t;
    t.add_node(mat("a", 0.3));
    t.add_node(mat("b", 0.3));
    t.add_node(mat("c", 0.3));
    const auto stages = assign_stages(t, {0, 1, 2}, 4, 1.0);
    ASSERT_TRUE(stages.has_value());
    EXPECT_EQ((*stages)[0], 0);
    EXPECT_EQ((*stages)[1], 0);
    EXPECT_EQ((*stages)[2], 0);
}

TEST(AssignStages, SplitsWhenStageFull) {
    tdg::Tdg t;
    t.add_node(mat("a", 0.6));
    t.add_node(mat("b", 0.6));
    const auto stages = assign_stages(t, {0, 1}, 2, 1.0);
    ASSERT_TRUE(stages.has_value());
    EXPECT_NE((*stages)[0], (*stages)[1]);
}

TEST(AssignStages, FailsWhenDepthExceedsStages) {
    const tdg::Tdg t = chain({0.1, 0.1, 0.1});
    EXPECT_FALSE(assign_stages(t, {0, 1, 2}, 2, 1.0).has_value());
}

TEST(AssignStages, FailsWhenMatLargerThanStage) {
    const tdg::Tdg t = chain({1.5});
    EXPECT_FALSE(assign_stages(t, {0}, 4, 1.0).has_value());
}

TEST(AssignStages, SubsetIgnoresOutsidePredecessors) {
    // Only intra-segment edges constrain stage order.
    const tdg::Tdg t = chain({0.2, 0.2, 0.2});
    const auto stages = assign_stages(t, {2}, 1, 1.0);
    ASSERT_TRUE(stages.has_value());
    EXPECT_EQ((*stages)[0], 0);
}

TEST(AssignStages, Validation) {
    const tdg::Tdg t = chain({0.2});
    EXPECT_THROW((void)assign_stages(t, {0}, 0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)assign_stages(t, {0, 0}, 2, 1.0), std::invalid_argument);
}

TEST(SegmentFits, AggregateAndPackingChecks) {
    const tdg::Tdg t = chain({0.6, 0.6, 0.6});
    EXPECT_TRUE(segment_fits(t, {0, 1, 2}, 3, 1.0));
    EXPECT_FALSE(segment_fits(t, {0, 1, 2}, 1, 1.0));  // depth 3 > 1 stage
    EXPECT_FALSE(segment_fits(t, {0, 1, 2}, 2, 0.7));  // 1.8 > 1.4 aggregate
}

TEST(SegmentFits, EmptySegmentFits) {
    const tdg::Tdg t = chain({0.5});
    EXPECT_TRUE(segment_fits(t, {}, 2, 1.0));
}

}  // namespace
}  // namespace hermes::core
