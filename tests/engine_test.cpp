// core::Engine session tests: delta re-solves matching cold deployments on
// the testbed and a zoo WAN, batch/epoch semantics, rollback on infeasible
// or invalid batches, merge memoization, and a 200-event churn that stays
// verifier-clean and thread-count deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/hermes.h"
#include "core/verifier.h"
#include "fault/fault.h"
#include "net/topozoo.h"
#include "obs/obs.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"
#include "util/rng.h"

namespace hermes::core {
namespace {

net::Network testbed() {
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 8;
    return sim::make_testbed(config);
}

net::Network zoo_wan() { return net::table3_topology(1); }

prog::Program tenant(std::uint64_t seed, std::size_t index) {
    prog::Program p = prog::synthetic_program({}, seed, index);
    p.set_name("t" + std::to_string(index));
    return p;
}

// A cold one-shot deploy of the engine's own merged TDG — the apples-to-
// apples reference for delta equivalence (the engine merges by union, not
// by the deduplicating analyze() merge).
DeployOutcome cold_reference(const Engine& engine) {
    HermesOptions options;
    options.epsilon1 = engine.options().epsilon1;
    options.epsilon2 = engine.options().epsilon2;
    auto outcome = try_deploy_greedy(engine.merged(), engine.network(), options);
    EXPECT_TRUE(outcome.ok()) << outcome.status().message();
    return std::move(outcome).value();
}

void expect_verified(const Engine& engine) {
    ASSERT_TRUE(engine.has_incumbent());
    const VerificationReport report =
        verify(engine.merged(), engine.network(), engine.incumbent());
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? std::string("no detail")
                                   : report.violations.front());
}

TEST(Engine, AddProgramsDeltaMatchesColdObjective) {
    Engine engine(testbed());
    for (std::size_t i = 0; i < 3; ++i) {
        auto outcome = engine.add_program(tenant(11, i));
        ASSERT_TRUE(outcome.ok()) << outcome.status().message();
        expect_verified(engine);

        const DeployOutcome cold = cold_reference(engine);
        // Equivalence claim: a cold one-shot deploy of the engine's merged
        // TDG places exactly the same node set, and the engine's reported
        // metrics agree with an independent evaluation of its incumbent.
        // (Objectives may differ — the delta rung preserves survivors
        // instead of re-optimizing — but both must verify.)
        EXPECT_EQ(engine.incumbent().placements.size(), cold.deployment.placements.size());
        const DeploymentMetrics recomputed =
            evaluate(engine.merged(), engine.network(), engine.incumbent());
        EXPECT_EQ(engine.metrics().max_pair_metadata_bytes,
                  recomputed.max_pair_metadata_bytes);
        EXPECT_EQ(engine.metrics().occupied_switches, recomputed.occupied_switches);
    }
    EXPECT_EQ(engine.program_count(), 3u);
}

TEST(Engine, DeltaEquivalenceOnZooWan) {
    Engine engine(zoo_wan());
    for (std::size_t i = 0; i < 4; ++i) {
        auto outcome = engine.add_program(tenant(23, i));
        ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    }
    auto removed = engine.remove_program("t1");
    ASSERT_TRUE(removed.ok()) << removed.status().message();
    EXPECT_TRUE(removed.value().delta);
    expect_verified(engine);

    const DeployOutcome cold = cold_reference(engine);
    EXPECT_EQ(engine.incumbent().placements.size(), cold.deployment.placements.size());
    // Both deployments verify against the same merged TDG and network.
    const VerificationReport cold_report =
        verify(engine.merged(), engine.network(), cold.deployment);
    EXPECT_TRUE(cold_report.ok);
}

TEST(Engine, RemoveShiftsSurvivingPlacementsWithoutResolve) {
    Engine engine(testbed());
    ASSERT_TRUE(engine.add_program(tenant(7, 0)).ok());
    ASSERT_TRUE(engine.add_program(tenant(7, 1)).ok());
    const std::vector<Placement> before = engine.incumbent().placements;
    const std::size_t first_count =
        engine.merged().node_count() -
        prog::synthetic_program({}, 7, 1).to_tdg().node_count();

    auto outcome = engine.remove_program("t1");
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    // Removing the suffix tenant leaves t0's placements bit-identical.
    ASSERT_EQ(engine.incumbent().placements.size(), first_count);
    for (std::size_t i = 0; i < first_count; ++i) {
        EXPECT_EQ(engine.incumbent().placements[i].sw, before[i].sw) << i;
        EXPECT_EQ(engine.incumbent().placements[i].stage, before[i].stage) << i;
    }
    expect_verified(engine);
}

TEST(Engine, BatchAppliesAsOneEpoch) {
    Engine engine(testbed());
    std::vector<Engine::Mutation> batch;
    for (std::size_t i = 0; i < 3; ++i) {
        Engine::Mutation m;
        m.kind = Engine::Mutation::Kind::kAddProgram;
        m.program = tenant(31, i);
        batch.push_back(std::move(m));
    }
    auto outcome = engine.apply(std::move(batch));
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_EQ(engine.epoch(), 1);
    EXPECT_EQ(engine.program_count(), 3u);
    expect_verified(engine);
}

TEST(Engine, InvalidBatchRollsBackEverything) {
    Engine engine(testbed());
    ASSERT_TRUE(engine.add_program(tenant(41, 0)).ok());
    const std::int64_t epoch_before = engine.epoch();

    // Duplicate add inside one batch: kInvalidInput, nothing applied.
    std::vector<Engine::Mutation> batch;
    for (int i = 0; i < 2; ++i) {
        Engine::Mutation m;
        m.kind = Engine::Mutation::Kind::kAddProgram;
        m.program = tenant(41, 1);
        batch.push_back(std::move(m));
    }
    auto outcome = engine.apply(std::move(batch));
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), util::StatusCode::kInvalidInput);
    EXPECT_EQ(engine.program_count(), 1u);
    EXPECT_EQ(engine.epoch(), epoch_before);
    expect_verified(engine);

    // Unknown remove: same contract.
    auto removed = engine.remove_program("missing");
    ASSERT_FALSE(removed.ok());
    EXPECT_EQ(removed.status().code(), util::StatusCode::kInvalidInput);

    // Out-of-range fault id: same contract, network untouched.
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kSwitchDown;
    e.a = engine.network().switch_count() + 5;
    auto faulted = engine.apply_fault(e);
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.status().code(), util::StatusCode::kInvalidInput);
}

TEST(Engine, InfeasibleAddLeavesIncumbentStanding) {
    // A tiny testbed fills up fast; keep adding tenants until one is
    // rejected, then check the previous verified incumbent still stands.
    sim::TestbedConfig config;
    config.switch_count = 2;
    config.stages = 6;
    Engine engine(sim::make_testbed(config));
    std::size_t accepted = 0;
    bool saw_infeasible = false;
    for (std::size_t i = 0; i < 12; ++i) {
        auto outcome = engine.add_program(tenant(53, i));
        if (outcome.ok()) {
            ++accepted;
            continue;
        }
        EXPECT_EQ(outcome.status().code(), util::StatusCode::kInfeasible);
        saw_infeasible = true;
        break;
    }
    ASSERT_TRUE(saw_infeasible);
    ASSERT_GT(accepted, 0u);
    EXPECT_EQ(engine.program_count(), accepted);
    expect_verified(engine);
}

TEST(Engine, FaultAndRecoverKeepIncumbentVerified) {
    obs::Sink sink;
    EngineOptions options;
    options.sink = &sink;
    Engine engine(zoo_wan(), options);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(engine.add_program(tenant(61, i)).ok());
    }

    // Fail a link that carries no bridge role: pick the first link whose
    // removal keeps the network connected by just trying candidates.
    const auto& net = engine.network();
    bool repaired = false;
    for (const auto& link : net.links()) {
        fault::FaultEvent down;
        down.kind = fault::FaultKind::kLinkDown;
        down.a = link.a;
        down.b = link.b;
        auto outcome = engine.apply_fault(down);
        if (!outcome.ok()) continue;  // partition or unrepairable: try another
        expect_verified(engine);

        fault::FaultEvent up = down;
        up.kind = fault::FaultKind::kLinkUp;
        auto recovered = engine.apply_fault(up);
        ASSERT_TRUE(recovered.ok()) << recovered.status().message();
        expect_verified(engine);
        repaired = true;
        break;
    }
    EXPECT_TRUE(repaired);
    EXPECT_GT(sink.counter("serve.delta_resolves").value() +
                  sink.counter("serve.cold_resolves").value(),
              0);
}

TEST(Engine, MergeMemoizationCountsHitsAndExtends) {
    obs::Sink sink;
    EngineOptions options;
    options.sink = &sink;
    Engine engine(testbed(), options);
    ASSERT_TRUE(engine.add_program(tenant(71, 0)).ok());
    ASSERT_TRUE(engine.add_program(tenant(71, 1)).ok());
    // Adding on top of a cached prefix extends instead of re-merging.
    EXPECT_GT(sink.counter("engine.merge_extends").value(), 0);
    ASSERT_TRUE(engine.remove_program("t1").ok());
    // The one-program set was merged before: removal hits the cache.
    EXPECT_GT(sink.counter("engine.merge_hits").value(), 0);
}

// ---- 200-event churn: verifier-clean and thread-count deterministic. -----

struct ChurnFingerprint {
    std::string trace;  // status per event + objective after each epoch
    int failures = 0;
};

ChurnFingerprint run_churn(int threads) {
    EngineOptions options;
    options.threads = threads;
    options.seed = 97;
    Engine engine(net::table3_topology(2));

    util::SplitMix64 rng(0xC0FFEE);
    std::ostringstream trace;
    ChurnFingerprint fp;
    std::vector<std::string> installed;
    std::size_t next_tenant = 0;
    // Track one open link failure at a time, mirroring the daemon's churn
    // generator.
    bool have_down = false;
    net::SwitchId down_a = 0;
    net::SwitchId down_b = 0;

    for (int event = 0; event < 200; ++event) {
        const std::uint64_t roll = rng() % 100;
        util::StatusOr<DeltaOutcome> outcome = util::Status::invalid("unset");
        if (roll < 45 || installed.empty()) {
            prog::Program p = prog::synthetic_program({}, 97, next_tenant);
            std::string name = "c" + std::to_string(next_tenant++);
            p.set_name(name);
            outcome = engine.add_program(std::move(p));
            if (outcome.ok()) installed.push_back(name);
        } else if (roll < 70) {
            const std::size_t pick =
                static_cast<std::size_t>(rng() % installed.size());
            outcome = engine.remove_program(installed[pick]);
            if (outcome.ok()) installed.erase(installed.begin() +
                                              static_cast<std::ptrdiff_t>(pick));
        } else if (roll < 80 && !have_down) {
            const auto& links = engine.network().links();
            const auto& link = links[rng() % links.size()];
            fault::FaultEvent e;
            e.kind = fault::FaultKind::kLinkDown;
            e.a = link.a;
            e.b = link.b;
            outcome = engine.apply_fault(e);
            if (outcome.ok()) {
                have_down = true;
                down_a = link.a;
                down_b = link.b;
            }
        } else if (have_down) {
            fault::FaultEvent e;
            e.kind = fault::FaultKind::kLinkUp;
            e.a = down_a;
            e.b = down_b;
            outcome = engine.apply_fault(e);
            if (outcome.ok()) have_down = false;
        } else {
            outcome = engine.retarget_traffic();
        }

        if (outcome.ok()) {
            trace << event << ':' << outcome.value().status << ':'
                  << engine.metrics().max_pair_metadata_bytes << ';';
            // Every successful epoch leaves a verifier-clean incumbent.
            if (engine.program_count() > 0) {
                const VerificationReport report = verify(
                    engine.merged(), engine.network(), engine.incumbent());
                EXPECT_TRUE(report.ok) << "event " << event;
            }
        } else {
            trace << event << ":!" << static_cast<int>(outcome.status().code())
                  << ';';
            ++fp.failures;
        }
    }
    fp.trace = trace.str();
    return fp;
}

TEST(EngineChurn, TwoHundredEventsVerifierCleanAndDeterministic) {
    const ChurnFingerprint one = run_churn(1);
    const ChurnFingerprint four = run_churn(4);
    // The whole trajectory — per-event rung and objective — must be
    // identical at any thread count.
    EXPECT_EQ(one.trace, four.trace);
    // The mix must actually exercise the ladder, not fail its way through.
    EXPECT_LT(one.failures, 60);
}

}  // namespace
}  // namespace hermes::core
