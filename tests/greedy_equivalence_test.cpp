// Golden equivalence suite for the indexed Algorithm 2 rewrite.
//
// The production splitter/coalescer in core/greedy.h replaced the seed's
// edge-rescanning implementations with adjacency-indexed incremental ones;
// the seed code survives verbatim in core/greedy_reference.h. These tests
// pin the rewrite to the reference: identical segment output on seeded
// random TDGs across geometries, identical deployments from the parallel
// anchor search at any thread count, and oracle answers identical to the
// free path functions.
#include <gtest/gtest.h>

#include <random>

#include "core/greedy.h"
#include "core/greedy_reference.h"
#include "net/builders.h"
#include "net/path_oracle.h"
#include "net/topozoo.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"
#include "tdg/analyzer.h"

namespace hermes::core {
namespace {

using tdg::DepType;
using tdg::NodeId;

// Random DAG with forward-only edges (node ids are a valid topological
// order), random per-MAT resources, and random metadata bytes per edge.
tdg::Tdg random_tdg(std::mt19937& rng, std::size_t node_count, double edge_prob) {
    tdg::Tdg t;
    std::uniform_real_distribution<double> resource(0.1, 1.2);
    std::uniform_int_distribution<int> bytes(1, 16);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (std::size_t v = 0; v < node_count; ++v) {
        const std::string name = "m" + std::to_string(v);
        t.add_node(tdg::Mat(name, {tdg::header_field("h_" + name, 2)},
                            {tdg::Action{"act", {tdg::metadata_field("md_" + name, 4)}}},
                            16, resource(rng)));
    }
    for (std::size_t a = 0; a < node_count; ++a) {
        for (std::size_t b = a + 1; b < node_count; ++b) {
            if (coin(rng) > edge_prob) continue;
            t.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b), DepType::kMatch);
            t.edges().back().metadata_bytes = bytes(rng);
        }
    }
    return t;
}

std::vector<NodeId> all_nodes(const tdg::Tdg& t) {
    std::vector<NodeId> nodes(t.node_count());
    for (NodeId v = 0; v < t.node_count(); ++v) nodes[v] = v;
    return nodes;
}

struct Geometry {
    int stages;
    double stage_capacity;
};
constexpr Geometry kGeometries[] = {{2, 1.0}, {4, 2.0}, {12, 4.0}, {20, 10.0}};

TEST(GreedyEquivalence, SplitTdgMatchesReferenceOnRandomTdgs) {
    std::mt19937 rng(0x5eed);
    for (int trial = 0; trial < 30; ++trial) {
        std::uniform_int_distribution<std::size_t> size(2, 60);
        const tdg::Tdg t = random_tdg(rng, size(rng), 0.15);
        for (const Geometry& g : kGeometries) {
            std::vector<std::vector<NodeId>> ours, theirs;
            bool our_throw = false, their_throw = false;
            try {
                ours = split_tdg(t, all_nodes(t), g.stages, g.stage_capacity);
            } catch (const std::runtime_error&) {
                our_throw = true;
            }
            try {
                theirs = reference::split_tdg(t, all_nodes(t), g.stages, g.stage_capacity);
            } catch (const std::runtime_error&) {
                their_throw = true;
            }
            ASSERT_EQ(our_throw, their_throw)
                << "trial " << trial << " stages=" << g.stages;
            if (!our_throw) {
                ASSERT_EQ(ours, theirs) << "trial " << trial << " stages=" << g.stages;
            }
        }
    }
}

TEST(GreedyEquivalence, SplitFirstFitMatchesReferenceOnRandomTdgs) {
    std::mt19937 rng(0xf00d);
    for (int trial = 0; trial < 30; ++trial) {
        std::uniform_int_distribution<std::size_t> size(2, 60);
        const tdg::Tdg t = random_tdg(rng, size(rng), 0.2);
        for (const Geometry& g : kGeometries) {
            std::vector<std::vector<NodeId>> ours, theirs;
            bool our_throw = false, their_throw = false;
            try {
                ours = split_tdg_first_fit(t, all_nodes(t), g.stages, g.stage_capacity);
            } catch (const std::runtime_error&) {
                our_throw = true;
            }
            try {
                theirs = reference::split_tdg_first_fit(t, all_nodes(t), g.stages,
                                                        g.stage_capacity);
            } catch (const std::runtime_error&) {
                their_throw = true;
            }
            ASSERT_EQ(our_throw, their_throw)
                << "trial " << trial << " stages=" << g.stages;
            if (!our_throw) {
                ASSERT_EQ(ours, theirs) << "trial " << trial << " stages=" << g.stages;
            }
        }
    }
}

TEST(GreedyEquivalence, CoalesceMatchesReferenceOnRandomTdgs) {
    std::mt19937 rng(0xc0a1);
    for (int trial = 0; trial < 30; ++trial) {
        std::uniform_int_distribution<std::size_t> size(4, 60);
        const tdg::Tdg t = random_tdg(rng, size(rng), 0.15);
        // Over-fragment with a tight geometry, coalesce against a roomier
        // one (as deploy_segments_on_chain does when switches are scarce).
        std::vector<std::vector<NodeId>> fragments;
        try {
            fragments = reference::split_tdg(t, all_nodes(t), 2, 1.0);
        } catch (const std::runtime_error&) {
            continue;  // a single MAT exceeded the tight stage
        }
        for (std::size_t target = 1; target <= fragments.size(); ++target) {
            const auto ours = coalesce_segments(t, fragments, target, 12, 4.0);
            const auto theirs = reference::coalesce_segments(t, fragments, target, 12, 4.0);
            ASSERT_EQ(ours, theirs) << "trial " << trial << " target=" << target;
        }
    }
}

TEST(GreedyEquivalence, PaperWorkloadSplitsMatchReference) {
    for (const int count : {5, 15, 30}) {
        const auto programs = prog::paper_workload(count, 0xbeef);
        std::vector<tdg::Tdg> tdgs;
        for (const auto& p : programs) tdgs.push_back(p.to_tdg());
        const tdg::Tdg merged = tdg::analyze_programs(std::move(tdgs));
        EXPECT_EQ(split_tdg(merged, all_nodes(merged), 12, 4.0),
                  reference::split_tdg(merged, all_nodes(merged), 12, 4.0));
        EXPECT_EQ(split_tdg_first_fit(merged, all_nodes(merged), 12, 4.0),
                  reference::split_tdg_first_fit(merged, all_nodes(merged), 12, 4.0));
    }
}

bool same_deployment(const GreedyResult& a, const GreedyResult& b) {
    if (a.anchor != b.anchor || a.segments != b.segments) return false;
    if (a.deployment.placements.size() != b.deployment.placements.size()) return false;
    for (std::size_t v = 0; v < a.deployment.placements.size(); ++v) {
        if (a.deployment.placements[v].sw != b.deployment.placements[v].sw ||
            a.deployment.placements[v].stage != b.deployment.placements[v].stage) {
            return false;
        }
    }
    if (a.deployment.routes.size() != b.deployment.routes.size()) return false;
    for (const auto& [key, path] : a.deployment.routes) {
        const auto it = b.deployment.routes.find(key);
        if (it == b.deployment.routes.end()) return false;
        if (it->second.switches != path.switches) return false;
    }
    return true;
}

TEST(GreedyEquivalence, FullPipelineMatchesReferenceOnTestbed) {
    const auto programs = prog::paper_workload(8, 0x1234);
    std::vector<tdg::Tdg> tdgs;
    for (const auto& p : programs) tdgs.push_back(p.to_tdg());
    const tdg::Tdg merged = tdg::analyze_programs(std::move(tdgs));
    const net::Network n = sim::make_testbed({});
    const GreedyResult ours = greedy_deploy(merged, n);
    const GreedyResult theirs = reference::greedy_deploy(merged, n);
    EXPECT_TRUE(same_deployment(ours, theirs));
}

TEST(GreedyEquivalence, ParallelAnchorSearchIsDeterministic) {
    const auto programs = prog::paper_workload(12, 0x777);
    std::vector<tdg::Tdg> tdgs;
    for (const auto& p : programs) tdgs.push_back(p.to_tdg());
    const tdg::Tdg merged = tdg::analyze_programs(std::move(tdgs));
    const net::Network n = net::table3_topology(3);

    net::PathOracle oracle(n);
    GreedyOptions serial;
    serial.threads = 1;
    const GreedyResult base = greedy_deploy(merged, n, serial, &oracle);
    for (const int threads : {2, 8, 0}) {
        GreedyOptions opts;
        opts.threads = threads;
        net::PathOracle fresh(n);  // also exercise cold-cache parallel fills
        const GreedyResult parallel = greedy_deploy(merged, n, opts, &fresh);
        EXPECT_TRUE(same_deployment(base, parallel)) << "threads=" << threads;
    }
    // And the serial cached run must match the uncached seed pipeline.
    const GreedyResult seed = reference::greedy_deploy(merged, n);
    EXPECT_TRUE(same_deployment(base, seed));
}

TEST(GreedyEquivalence, OracleMatchesFreePathFunctions) {
    const net::Network n = net::table3_topology(5);
    net::PathOracle oracle(n);
    for (net::SwitchId src = 0; src < n.switch_count(); src += 3) {
        EXPECT_EQ(oracle.latencies(src), net::shortest_latencies(n, src));
        for (net::SwitchId dst = 0; dst < n.switch_count(); dst += 5) {
            const auto cached = oracle.path(src, dst);
            const auto direct = net::shortest_path(n, src, dst);
            ASSERT_EQ(cached.has_value(), direct.has_value());
            if (cached) {
                EXPECT_EQ(cached->switches, direct->switches);
                EXPECT_EQ(cached->latency_us, direct->latency_us);
                EXPECT_EQ(oracle.path_latency(src, dst), direct->latency_us);
            }
            // k slice-from-cache: ask for 4, then 2 (served from the cached
            // 4), then 6 (recompute) — all must equal the free function.
            for (const std::size_t k : {4u, 2u, 6u}) {
                const auto cached_k = oracle.k_paths(src, dst, k);
                const auto direct_k = net::k_shortest_paths(n, src, dst, k);
                ASSERT_EQ(cached_k.size(), direct_k.size());
                for (std::size_t i = 0; i < cached_k.size(); ++i) {
                    EXPECT_EQ(cached_k[i].switches, direct_k[i].switches);
                }
            }
        }
    }
    const auto stats = oracle.stats();
    EXPECT_GT(stats.tree_hits, 0u);
    EXPECT_GT(stats.k_hits, 0u);
}

}  // namespace
}  // namespace hermes::core
