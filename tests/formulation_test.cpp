// P#1 MILP formulation tests: solved instances against known optima,
// decode/encode round trips, epsilon bounds, objective variants, and the
// segment-level reduction.
#include <gtest/gtest.h>

#include "core/formulation.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/verifier.h"
#include "milp/solver.h"
#include "sim/testbed.h"

namespace hermes::core {
namespace {

using tdg::DepType;
using tdg::NodeId;

tdg::Mat mat(const std::string& name, double resource) {
    return tdg::Mat(name, {tdg::header_field("h_" + name, 2)},
                    {tdg::Action{"act", {tdg::metadata_field("m_" + name, 4)}}}, 16,
                    resource);
}

// Figure 1's motivating example: a --1B--> b --4B--> c, switches holding two
// MATs each. The optimal deployment co-locates b and c (overhead 1 byte).
tdg::Tdg fig1_tdg() {
    tdg::Tdg t;
    for (const char* n : {"a", "b", "c"}) t.add_node(mat(n, 1.0));
    t.add_edge(0, 1, DepType::kMatch);
    t.edges().back().metadata_bytes = 1;
    t.add_edge(1, 2, DepType::kMatch);
    t.edges().back().metadata_bytes = 4;
    return t;
}

net::Network two_switches() {
    sim::TestbedConfig config;
    config.switch_count = 2;
    config.stages = 2;
    return sim::make_testbed(config);
}

milp::MilpOptions quick() {
    milp::MilpOptions o;
    o.time_limit_seconds = 30.0;
    return o;
}

TEST(Formulation, Figure1OptimalCoLocatesHeavyEdge) {
    const tdg::Tdg t = fig1_tdg();
    const net::Network n = two_switches();
    P1Formulation f(t, n, FormulationOptions{});
    const milp::MilpResult r = milp::solve_milp(f.model(), quick());
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 1.0, 1e-6);  // only the 1-byte edge crosses
    const Deployment d = f.decode(r.values);
    EXPECT_EQ(max_pair_metadata(t, d), 1);
    EXPECT_EQ(d.switch_of(1), d.switch_of(2));  // b and c together
    EXPECT_TRUE(verify(t, n, d).ok);
}

TEST(Formulation, MatchesGreedyOnFigure4) {
    // On the Fig 4 instance both the exact model and Algorithm 2 reach 4
    // bytes (the heuristic is optimal at this scale, as the paper observes).
    tdg::Tdg t;
    for (const char* nm : {"a", "b", "c", "d", "e"}) t.add_node(mat(nm, 1.0));
    auto edge = [&](NodeId f, NodeId to, int bytes) {
        t.add_edge(f, to, DepType::kMatch);
        t.edges().back().metadata_bytes = bytes;
    };
    edge(0, 1, 2);
    edge(0, 2, 2);
    edge(1, 2, 5);
    edge(2, 3, 1);
    edge(2, 4, 2);
    edge(3, 4, 2);

    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 2;
    const net::Network n = sim::make_testbed(config);

    P1Formulation f(t, n, FormulationOptions{});
    milp::MilpOptions options = quick();
    options.warm_start = f.encode(greedy_deploy(t, n).deployment);
    ASSERT_TRUE(options.warm_start.has_value());
    const milp::MilpResult r = milp::solve_milp(f.model(), options);
    ASSERT_TRUE(r.has_solution());
    EXPECT_NEAR(r.objective, 4.0, 1e-6);
}

TEST(Formulation, SingleSwitchZeroOverhead) {
    const tdg::Tdg t = fig1_tdg();
    sim::TestbedConfig config;
    config.switch_count = 2;
    config.stages = 4;  // everything fits one switch
    const net::Network n = sim::make_testbed(config);
    P1Formulation f(t, n, FormulationOptions{});
    const milp::MilpResult r = milp::solve_milp(f.model(), quick());
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 0.0, 1e-6);
    const Deployment d = f.decode(r.values);
    EXPECT_EQ(d.occupied_switches().size(), 1u);
    EXPECT_TRUE(verify(t, n, d).ok);
}

TEST(Formulation, InfeasibleWhenCapacityShort) {
    const tdg::Tdg t = fig1_tdg();
    sim::TestbedConfig config;
    config.switch_count = 1;
    config.stages = 2;  // 3 unit-size MATs cannot fit 2 stages
    const net::Network n = sim::make_testbed(config);
    P1Formulation f(t, n, FormulationOptions{});
    const milp::MilpResult r = milp::solve_milp(f.model(), quick());
    EXPECT_EQ(r.status, milp::MilpStatus::kInfeasible);
}

TEST(Formulation, Epsilon2ForcesFewerSwitches) {
    const tdg::Tdg t = fig1_tdg();
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    FormulationOptions fo;
    fo.epsilon2 = 1;
    P1Formulation f(t, n, fo);
    const milp::MilpResult r = milp::solve_milp(f.model(), quick());
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    const Deployment d = f.decode(r.values);
    EXPECT_EQ(d.occupied_switches().size(), 1u);
}

TEST(Formulation, Epsilon1BoundsRouteLatency) {
    const tdg::Tdg t = fig1_tdg();
    const net::Network n = two_switches();  // must use both switches
    FormulationOptions fo;
    fo.epsilon1 = 1.0;  // a single inter-switch hop costs 7us
    P1Formulation f(t, n, fo);
    const milp::MilpResult r = milp::solve_milp(f.model(), quick());
    EXPECT_EQ(r.status, milp::MilpStatus::kInfeasible);
}

TEST(Formulation, EncodeRoundTripsGreedy) {
    const tdg::Tdg t = fig1_tdg();
    const net::Network n = two_switches();
    P1Formulation f(t, n, FormulationOptions{});
    const Deployment greedy = greedy_deploy(t, n).deployment;
    const auto values = f.encode(greedy);
    ASSERT_TRUE(values.has_value());
    EXPECT_TRUE(f.model().is_feasible(*values, 1e-5));
    const Deployment decoded = f.decode(*values);
    for (NodeId v = 0; v < t.node_count(); ++v) {
        EXPECT_EQ(decoded.switch_of(v), greedy.switch_of(v));
    }
}

TEST(Formulation, EncodeRejectsForeignDeployment) {
    const tdg::Tdg t = fig1_tdg();
    const net::Network n = two_switches();
    P1Formulation f(t, n, FormulationOptions{});
    Deployment bogus;
    bogus.placements = {{9, 0}, {9, 0}, {9, 0}};
    EXPECT_FALSE(f.encode(bogus).has_value());
    Deployment wrong_arity;
    wrong_arity.placements = {{0, 0}};
    EXPECT_FALSE(f.encode(wrong_arity).has_value());
}

TEST(Formulation, SegmentLevelReachesSameObjectiveHere) {
    const tdg::Tdg t = fig1_tdg();
    const net::Network n = two_switches();
    FormulationOptions fo;
    fo.segment_level = true;
    P1Formulation f(t, n, fo);
    EXPECT_LT(f.unit_count(), t.node_count());
    const milp::MilpResult r = milp::solve_milp(f.model(), quick());
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    // The min-metadata split already separates a | b,c, so the segment-level
    // optimum matches the MAT-level one.
    EXPECT_NEAR(r.objective, 1.0, 1e-6);
    EXPECT_TRUE(verify(t, n, f.decode(r.values)).ok);
}

TEST(Formulation, LatencyObjectiveMinimizesRoutes) {
    const tdg::Tdg t = fig1_tdg();
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 4;  // fits one switch -> zero routes is optimal
    const net::Network n = sim::make_testbed(config);
    FormulationOptions fo;
    fo.objective = P1Objective::kMinLatency;
    P1Formulation f(t, n, fo);
    const milp::MilpResult r = milp::solve_milp(f.model(), quick());
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 0.0, 1e-6);
}

TEST(Formulation, OccupiedObjectiveUsesOneSwitch) {
    const tdg::Tdg t = fig1_tdg();
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    FormulationOptions fo;
    fo.objective = P1Objective::kMinOccupied;
    P1Formulation f(t, n, fo);
    const milp::MilpResult r = milp::solve_milp(f.model(), quick());
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 1.0, 1e-6);
}

TEST(Formulation, CandidateLimitShrinksModel) {
    const tdg::Tdg t = fig1_tdg();
    sim::TestbedConfig config;
    config.switch_count = 6;
    config.stages = 2;
    const net::Network n = sim::make_testbed(config);
    FormulationOptions full;
    P1Formulation f_full(t, n, full);
    FormulationOptions capped;
    capped.candidate_limit = 2;
    P1Formulation f_capped(t, n, capped);
    EXPECT_EQ(f_capped.candidates().size(), 2u);
    EXPECT_LT(f_capped.model().variable_count(), f_full.model().variable_count());
    const milp::MilpResult r = milp::solve_milp(f_capped.model(), quick());
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 1.0, 1e-6);
}

TEST(Formulation, NoProgrammableSwitchesRejected) {
    const tdg::Tdg t = fig1_tdg();
    net::Network n;
    n.add_switch(net::SwitchProps{});
    EXPECT_THROW((P1Formulation(t, n, FormulationOptions{})), std::invalid_argument);
}

}  // namespace
}  // namespace hermes::core
