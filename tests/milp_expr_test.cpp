#include <gtest/gtest.h>

#include "milp/expr.h"
#include "milp/model.h"

namespace hermes::milp {
namespace {

TEST(LinExpr, TermConstruction) {
    const LinExpr e = LinExpr::term(3, 2.5);
    ASSERT_EQ(e.terms().size(), 1u);
    EXPECT_EQ(e.terms()[0].var, 3);
    EXPECT_DOUBLE_EQ(e.terms()[0].coef, 2.5);
    EXPECT_DOUBLE_EQ(e.constant(), 0.0);
}

TEST(LinExpr, ImplicitConstant) {
    const LinExpr e = 4.5;
    EXPECT_TRUE(e.empty());
    EXPECT_DOUBLE_EQ(e.constant(), 4.5);
}

TEST(LinExpr, AddTermCombines) {
    LinExpr e;
    e.add_term(1, 2.0);
    e.add_term(1, 3.0);
    ASSERT_EQ(e.terms().size(), 1u);
    EXPECT_DOUBLE_EQ(e.coefficient(1), 5.0);
}

TEST(LinExpr, CancellationRemovesTerm) {
    LinExpr e;
    e.add_term(1, 2.0);
    e.add_term(1, -2.0);
    EXPECT_TRUE(e.empty());
}

TEST(LinExpr, ZeroCoefficientIgnored) {
    LinExpr e;
    e.add_term(1, 0.0);
    EXPECT_TRUE(e.empty());
}

TEST(LinExpr, NegativeVarRejected) {
    LinExpr e;
    EXPECT_THROW(e.add_term(-1, 1.0), std::invalid_argument);
}

TEST(LinExpr, TermsStaySorted) {
    LinExpr e;
    e.add_term(5, 1.0);
    e.add_term(1, 1.0);
    e.add_term(3, 1.0);
    ASSERT_EQ(e.terms().size(), 3u);
    EXPECT_EQ(e.terms()[0].var, 1);
    EXPECT_EQ(e.terms()[1].var, 3);
    EXPECT_EQ(e.terms()[2].var, 5);
}

TEST(LinExpr, ArithmeticOperators) {
    const LinExpr a = LinExpr::term(0, 1.0) + LinExpr::term(1, 2.0);
    const LinExpr b = LinExpr::term(1, 3.0) + LinExpr{5.0};
    const LinExpr sum = a + b;
    EXPECT_DOUBLE_EQ(sum.coefficient(0), 1.0);
    EXPECT_DOUBLE_EQ(sum.coefficient(1), 5.0);
    EXPECT_DOUBLE_EQ(sum.constant(), 5.0);
    const LinExpr diff = a - b;
    EXPECT_DOUBLE_EQ(diff.coefficient(1), -1.0);
    EXPECT_DOUBLE_EQ(diff.constant(), -5.0);
    const LinExpr scaled = 2.0 * a;
    EXPECT_DOUBLE_EQ(scaled.coefficient(1), 4.0);
    const LinExpr scaled2 = a * -1.0;
    EXPECT_DOUBLE_EQ(scaled2.coefficient(0), -1.0);
}

TEST(LinExpr, ScaleByZeroClears) {
    LinExpr e = LinExpr::term(0, 2.0) + LinExpr{3.0};
    e *= 0.0;
    EXPECT_TRUE(e.empty());
    EXPECT_DOUBLE_EQ(e.constant(), 0.0);
}

TEST(LinExpr, Evaluate) {
    const LinExpr e = LinExpr::term(0, 2.0) + LinExpr::term(2, -1.0) + LinExpr{1.0};
    EXPECT_DOUBLE_EQ(e.evaluate({1.0, 99.0, 4.0}), 2.0 - 4.0 + 1.0);
    EXPECT_THROW((void)e.evaluate({1.0}), std::out_of_range);
}

TEST(LinExpr, CoefficientLookup) {
    const LinExpr e = LinExpr::term(2, 7.0);
    EXPECT_DOUBLE_EQ(e.coefficient(2), 7.0);
    EXPECT_DOUBLE_EQ(e.coefficient(1), 0.0);
}

// ---- Model ------------------------------------------------------------------

TEST(Model, VariableKinds) {
    Model m;
    const VarId c = m.add_continuous(0.0, 5.0, "c");
    const VarId i = m.add_integer(0.0, 5.0, "i");
    const VarId b = m.add_binary("b");
    EXPECT_EQ(m.variable(c).type, VarType::kContinuous);
    EXPECT_EQ(m.variable(i).type, VarType::kInteger);
    EXPECT_EQ(m.variable(b).type, VarType::kBinary);
    EXPECT_DOUBLE_EQ(m.variable(b).upper, 1.0);
    EXPECT_EQ(m.variable_count(), 3u);
}

TEST(Model, BadBoundsRejected) {
    Model m;
    EXPECT_THROW((void)m.add_continuous(2.0, 1.0, "x"), std::invalid_argument);
}

TEST(Model, ConstraintFoldsConstant) {
    Model m;
    const VarId x = m.add_continuous(0.0, 10.0, "x");
    LinExpr e = LinExpr::term(x);
    e.add_constant(3.0);
    m.add_constraint(e, Sense::kLe, 10.0);
    EXPECT_DOUBLE_EQ(m.constraints()[0].rhs, 7.0);
    EXPECT_DOUBLE_EQ(m.constraints()[0].expr.constant(), 0.0);
}

TEST(Model, ConstraintUnknownVariableRejected) {
    Model m;
    EXPECT_THROW(m.add_constraint(LinExpr::term(0), Sense::kLe, 1.0), std::out_of_range);
}

TEST(Model, FeasibilityChecker) {
    Model m;
    const VarId x = m.add_integer(0.0, 5.0, "x");
    const VarId y = m.add_continuous(0.0, 5.0, "y");
    m.add_constraint(LinExpr::term(x) + LinExpr::term(y), Sense::kLe, 4.0);
    m.add_constraint(LinExpr::term(x), Sense::kGe, 1.0);
    m.add_constraint(LinExpr::term(y, 2.0), Sense::kEq, 2.0);
    EXPECT_TRUE(m.is_feasible({2.0, 1.0}));
    EXPECT_FALSE(m.is_feasible({2.5, 1.0}));  // integrality
    EXPECT_FALSE(m.is_feasible({0.0, 1.0}));  // >= violated
    EXPECT_FALSE(m.is_feasible({2.0, 3.0}));  // <= and == violated
    EXPECT_FALSE(m.is_feasible({2.0}));       // wrong arity
    EXPECT_FALSE(m.is_feasible({6.0, 1.0}));  // bound violated
}

TEST(Model, ObjectiveSense) {
    Model m;
    const VarId x = m.add_continuous(0.0, 1.0, "x");
    m.minimize(LinExpr::term(x));
    EXPECT_TRUE(m.is_minimization());
    m.maximize(LinExpr::term(x));
    EXPECT_FALSE(m.is_minimization());
    EXPECT_DOUBLE_EQ(m.objective_value({0.25}), 0.25);
}

TEST(Model, BoundMutationForBranching) {
    Model m;
    const VarId x = m.add_integer(0.0, 9.0, "x");
    m.set_upper(x, 4.0);
    m.set_lower(x, 2.0);
    EXPECT_DOUBLE_EQ(m.variable(x).lower, 2.0);
    EXPECT_DOUBLE_EQ(m.variable(x).upper, 4.0);
    EXPECT_THROW(m.set_upper(5, 1.0), std::out_of_range);
}

}  // namespace
}  // namespace hermes::milp
