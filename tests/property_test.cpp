// Property-based suites (parameterized gtest): invariants that must hold for
// every random instance — deployments verify, splits partition, cuts are
// conservative, simplex solutions are feasible, greedy never beats the
// exact optimum.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/formulation.h"
#include "core/greedy.h"
#include "core/hermes.h"
#include "core/objective.h"
#include "core/verifier.h"
#include "milp/solver.h"
#include "net/builders.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"

namespace hermes {
namespace {

// ---- Random synthetic instance sweeps -------------------------------------

class SyntheticSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

TEST_P(SyntheticSweep, SplitPartitionsNodes) {
    const tdg::Tdg t =
        core::analyze({prog::synthetic_program(prog::SyntheticConfig{}, GetParam(), 0),
                       prog::synthetic_program(prog::SyntheticConfig{}, GetParam(), 1)});
    std::vector<tdg::NodeId> all(t.node_count());
    std::iota(all.begin(), all.end(), tdg::NodeId{0});
    const auto segments = core::split_tdg(t, all, 6, 1.0);
    std::set<tdg::NodeId> seen;
    for (const auto& segment : segments) {
        EXPECT_FALSE(segment.empty());
        EXPECT_TRUE(core::segment_fits(t, segment, 6, 1.0));
        for (const tdg::NodeId v : segment) EXPECT_TRUE(seen.insert(v).second);
    }
    EXPECT_EQ(seen.size(), t.node_count());
}

TEST_P(SyntheticSweep, SegmentsRespectTopologicalOrder) {
    // No TDG edge may point from a later segment to an earlier one.
    const tdg::Tdg t =
        core::analyze({prog::synthetic_program(prog::SyntheticConfig{}, GetParam(), 2)});
    std::vector<tdg::NodeId> all(t.node_count());
    std::iota(all.begin(), all.end(), tdg::NodeId{0});
    const auto segments = core::split_tdg(t, all, 4, 1.0);
    std::vector<std::size_t> segment_of(t.node_count());
    for (std::size_t s = 0; s < segments.size(); ++s) {
        for (const tdg::NodeId v : segments[s]) segment_of[v] = s;
    }
    for (const tdg::Edge& e : t.edges()) {
        EXPECT_LE(segment_of[e.from], segment_of[e.to]);
    }
}

TEST_P(SyntheticSweep, GreedyDeploymentAlwaysVerifies) {
    const auto programs = prog::synthetic_programs(prog::SyntheticConfig{}, GetParam(), 3);
    const tdg::Tdg t = core::analyze(programs);
    net::TopologyConfig config;
    util::SplitMix64 rng(GetParam());
    const net::Network n = net::random_topology(30, 45, config, rng);
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    const core::VerificationReport report = core::verify(t, n, outcome.deployment);
    EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                         : report.violations.front());
}

TEST_P(SyntheticSweep, InflightAtLeastPairMetadata) {
    // The physical in-flight bytes on some hop can never undercut the
    // heaviest single pair.
    const auto programs = prog::synthetic_programs(prog::SyntheticConfig{}, GetParam(), 2);
    const tdg::Tdg t = core::analyze(programs);
    sim::TestbedConfig config;
    config.switch_count = 8;
    config.stages = 12;  // dense synthetic TDGs are deep; Tofino geometry
    const net::Network n = sim::make_testbed(config);
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    EXPECT_GE(outcome.metrics.max_inflight_metadata_bytes,
              outcome.metrics.max_pair_metadata_bytes);
}

TEST_P(SyntheticSweep, MergeNeverGrowsNodeCount) {
    const auto programs = prog::synthetic_programs(prog::SyntheticConfig{}, GetParam(), 4);
    std::size_t union_nodes = 0;
    for (const prog::Program& p : programs) union_nodes += p.mat_count();
    const tdg::Tdg merged = core::analyze(programs);
    EXPECT_LE(merged.node_count(), union_nodes);
    EXPECT_TRUE(merged.is_dag());
}

// ---- Random MILP sweeps -----------------------------------------------------

class MilpSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MilpSweep, ::testing::Range<std::uint64_t>(100u, 110u));

TEST_P(MilpSweep, RandomKnapsackMatchesExhaustive) {
    util::SplitMix64 rng(GetParam());
    const int items = 10;
    std::vector<double> w(items), v(items);
    for (int i = 0; i < items; ++i) {
        w[i] = static_cast<double>(rng.uniform_int(5, 40));
        v[i] = static_cast<double>(rng.uniform_int(1, 100));
    }
    const double cap = 80.0;
    double best = 0.0;
    for (int mask = 0; mask < (1 << items); ++mask) {
        double tw = 0.0, tv = 0.0;
        for (int i = 0; i < items; ++i) {
            if (mask & (1 << i)) {
                tw += w[i];
                tv += v[i];
            }
        }
        if (tw <= cap) best = std::max(best, tv);
    }
    milp::Model m;
    milp::LinExpr weight, value;
    for (int i = 0; i < items; ++i) {
        const milp::VarId x = m.add_binary();
        weight += milp::LinExpr::term(x, w[i]);
        value += milp::LinExpr::term(x, v[i]);
    }
    m.add_constraint(weight, milp::Sense::kLe, cap);
    m.maximize(value);
    const milp::MilpResult r = milp::solve_milp(m);
    ASSERT_EQ(r.status, milp::MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, best, 1e-6);
    EXPECT_TRUE(m.is_feasible(r.values, 1e-6));
}

TEST_P(MilpSweep, RandomLpSolutionsFeasible) {
    util::SplitMix64 rng(GetParam() * 31);
    milp::Model m;
    const int n = 8;
    std::vector<milp::VarId> xs;
    for (int i = 0; i < n; ++i) {
        xs.push_back(m.add_continuous(0.0, rng.uniform_real(1.0, 10.0)));
    }
    for (int c = 0; c < 6; ++c) {
        milp::LinExpr e;
        for (int i = 0; i < n; ++i) {
            if (rng.chance(0.5)) e += milp::LinExpr::term(xs[i], rng.uniform_real(0.1, 3.0));
        }
        if (e.empty()) continue;
        m.add_constraint(std::move(e), milp::Sense::kLe, rng.uniform_real(5.0, 20.0));
    }
    milp::LinExpr obj;
    for (int i = 0; i < n; ++i) obj += milp::LinExpr::term(xs[i], rng.uniform_real(0.5, 2.0));
    m.maximize(obj);
    const milp::LpResult r = milp::solve_lp(m);
    ASSERT_EQ(r.status, milp::LpStatus::kOptimal);
    EXPECT_TRUE(m.is_feasible(r.values, 1e-6));
    EXPECT_NEAR(m.objective_value(r.values), r.objective, 1e-6);
}

// ---- Greedy vs exact optimum -------------------------------------------------

class OptimalitySweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalitySweep, ::testing::Values(7u, 17u, 27u, 37u));

TEST_P(OptimalitySweep, GreedyNeverBeatsExactModel) {
    // Small random TDG on a 4-switch testbed; the exact model (warm-started
    // from the greedy solution) must never end up worse than greedy, and its
    // decoded deployment must verify and realize its claimed objective.
    prog::SyntheticConfig config;
    config.min_mats = 5;
    config.max_mats = 6;
    config.min_resource = 0.4;
    config.max_resource = 0.8;
    const tdg::Tdg t =
        core::analyze({prog::synthetic_program(config, GetParam(), 0)});
    sim::TestbedConfig tb;
    tb.switch_count = 4;
    tb.stages = 4;
    const net::Network n = sim::make_testbed(tb);

    const core::DeployOutcome greedy = core::try_deploy_greedy(t, n).value();
    core::P1Formulation f(t, n, core::FormulationOptions{});
    milp::MilpOptions options;
    options.time_limit_seconds = 20.0;
    options.warm_start = f.encode(greedy.deployment);
    const milp::MilpResult r = milp::solve_milp(f.model(), options);
    ASSERT_TRUE(r.has_solution());
    EXPECT_LE(r.objective, greedy.metrics.max_pair_metadata_bytes + 1e-6);
    const core::Deployment d = f.decode(r.values);
    EXPECT_TRUE(core::verify(t, n, d).ok);
    // A_max upper-bounds every pair's crossing metadata at any feasible point.
    EXPECT_LE(core::max_pair_metadata(t, d), static_cast<std::int64_t>(r.objective + 0.5));
}

}  // namespace
}  // namespace hermes
