// Edge-case and robustness suite: degenerate inputs, boundary geometries,
// zero-metadata workloads, isolated switches, and cross-module consistency
// checks that don't fit a single module's suite.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/common.h"
#include "core/dp_split.h"
#include "core/hermes.h"
#include "core/verifier.h"
#include "dataplane/backend.h"
#include "dataplane/interp.h"
#include "net/builders.h"
#include "prog/library.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"
#include "tdg/analyzer.h"

namespace hermes {
namespace {

using tdg::DepType;
using tdg::NodeId;

tdg::Mat mat(const std::string& name, double resource,
             std::vector<tdg::Field> writes = {}) {
    return tdg::Mat(name, {tdg::header_field("h_" + name, 2)},
                    {tdg::Action{"a", std::move(writes)}}, 16, resource);
}

// ---- Degenerate TDGs --------------------------------------------------------

TEST(EdgeCases, SingleMatDeploysOnOneSwitch) {
    tdg::Tdg t;
    t.add_node(mat("only", 0.5, {tdg::metadata_field("m", 4)}));
    const net::Network n = sim::make_testbed();
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    EXPECT_EQ(outcome.metrics.occupied_switches, 1);
    EXPECT_EQ(outcome.metrics.max_pair_metadata_bytes, 0);
    EXPECT_TRUE(core::verify(t, n, outcome.deployment).ok);
}

TEST(EdgeCases, ZeroMetadataWorkloadDeploysWithZeroOverhead) {
    // All dependencies are reverse-match (ordering only): any split is free.
    tdg::Tdg t;
    for (int i = 0; i < 6; ++i) t.add_node(mat("m" + std::to_string(i), 0.9));
    for (int i = 1; i < 6; ++i) t.add_edge(i - 1, i, DepType::kReverseMatch);
    tdg::analyze(t);
    EXPECT_EQ(t.total_metadata_bytes(), 0);
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 2;
    const net::Network n = sim::make_testbed(config);
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    EXPECT_EQ(outcome.metrics.max_pair_metadata_bytes, 0);
    EXPECT_TRUE(core::verify(t, n, outcome.deployment).ok);
}

TEST(EdgeCases, WideIndependentTdgPacksDensely) {
    // 24 independent small MATs on one 12-stage switch: everything fits.
    tdg::Tdg t;
    for (int i = 0; i < 24; ++i) t.add_node(mat("w" + std::to_string(i), 0.45));
    sim::TestbedConfig tb;
    tb.stages = 12;  // full Tofino profile (the testbed default is scaled down)
    const net::Network n = sim::make_testbed(tb);
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    EXPECT_EQ(outcome.metrics.occupied_switches, 1);
}

TEST(EdgeCases, DeepChainNeedsDepthNotResources) {
    // 8-deep dependency chain of tiny MATs: resources fit one stage, but the
    // chain needs 8 stages; with 4-stage switches it must span 2.
    tdg::Tdg t;
    for (int i = 0; i < 8; ++i) {
        t.add_node(mat("c" + std::to_string(i), 0.05,
                       {tdg::metadata_field("meta.c" + std::to_string(i), 2)}));
        if (i > 0) t.add_edge(i - 1, i, DepType::kMatch);
    }
    tdg::analyze(t);
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 4;
    const net::Network n = sim::make_testbed(config);
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    EXPECT_GE(outcome.metrics.occupied_switches, 2);
    EXPECT_TRUE(core::verify(t, n, outcome.deployment).ok);
}

// ---- Network corner cases --------------------------------------------------------

TEST(EdgeCases, SingleProgrammableSwitchAmongLegacy) {
    // Only one programmable switch in a legacy network: everything lands on
    // it or deployment fails loudly.
    net::Network n;
    net::SwitchProps legacy;
    legacy.programmable = false;
    net::SwitchProps tofino;
    tofino.programmable = true;
    tofino.stages = 12;
    const net::SwitchId a = n.add_switch(legacy);
    const net::SwitchId b = n.add_switch(tofino);
    const net::SwitchId c = n.add_switch(legacy);
    n.add_link(a, b, 1.0);
    n.add_link(b, c, 1.0);

    const tdg::Tdg t = core::analyze({prog::make_program("countmin_sketch")});
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    for (const core::Placement& p : outcome.deployment.placements) EXPECT_EQ(p.sw, b);
}

TEST(EdgeCases, DisconnectedProgrammableIslandUnusable) {
    // Two programmable switches with no path between them cannot form a
    // two-segment chain.
    net::Network n;
    net::SwitchProps tofino;
    tofino.programmable = true;
    tofino.stages = 1;
    tofino.stage_capacity = 1.0;
    n.add_switch(tofino);
    n.add_switch(tofino);  // no link between them

    tdg::Tdg t;
    t.add_node(mat("a", 0.9, {tdg::metadata_field("m", 4)}));
    t.add_node(mat("b", 0.9));
    t.add_edge(0, 1, DepType::kSuccessor);
    tdg::analyze(t);
    EXPECT_THROW((void)core::try_deploy_greedy(t, n).value(), std::runtime_error);
}

TEST(EdgeCases, HeterogeneousSwitchGeometries) {
    // Mixed stage counts: the fit check must respect each switch's own shape.
    net::Network n;
    net::SwitchProps small;
    small.programmable = true;
    small.stages = 2;
    net::SwitchProps big;
    big.programmable = true;
    big.stages = 12;
    const net::SwitchId s0 = n.add_switch(small);
    const net::SwitchId s1 = n.add_switch(big);
    n.add_link(s0, s1, 1.0);

    const tdg::Tdg t = core::analyze(prog::sketch_programs());
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    EXPECT_TRUE(core::verify(t, n, outcome.deployment).ok);
}

// ---- Conflict ordering invariants ---------------------------------------------------

TEST(EdgeCases, ConflictEdgesMakeMergedWorkloadsDeterministic) {
    // Any two analyzed workloads sharing fields: every pair of same-field
    // writers must be ordered (path between them).
    const tdg::Tdg t = core::analyze(prog::paper_workload(12, 31));
    // Build reachability by brute force.
    std::vector<std::vector<bool>> reach(t.node_count(),
                                         std::vector<bool>(t.node_count(), false));
    const auto topo = t.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        for (const tdg::Edge& e : t.edges()) {
            if (e.from != *it) continue;
            reach[*it][e.to] = true;
            for (std::size_t v = 0; v < t.node_count(); ++v) {
                if (reach[e.to][v]) reach[*it][v] = true;
            }
        }
    }
    std::map<std::string, std::vector<NodeId>> writers;
    for (NodeId v = 0; v < t.node_count(); ++v) {
        for (const tdg::Field& f : t.node(v).modified_fields()) {
            writers[f.name].push_back(v);
        }
    }
    for (const auto& [field, nodes] : writers) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            for (std::size_t j = i + 1; j < nodes.size(); ++j) {
                EXPECT_TRUE(reach[nodes[i]][nodes[j]] || reach[nodes[j]][nodes[i]])
                    << field << ": " << t.node(nodes[i]).name() << " vs "
                    << t.node(nodes[j]).name();
            }
        }
    }
}

TEST(EdgeCases, ConflictPassIdempotent) {
    tdg::Tdg t = core::analyze(prog::paper_workload(8, 13));
    const std::size_t edges_before = t.edge_count();
    EXPECT_EQ(tdg::add_write_conflict_edges(t), 0u);
    EXPECT_EQ(t.edge_count(), edges_before);
}

// ---- Cross-module consistency ---------------------------------------------------------

TEST(EdgeCases, BackendEgressBytesMatchPairMetadataForPureMatchTdg) {
    // For a TDG of match-type edges with single-writer fields, the backend's
    // per-pair egress bytes equal the objective evaluator's pair metadata.
    tdg::Tdg t;
    t.add_node(mat("a", 0.9, {tdg::metadata_field("meta.x", 4)}));
    t.add_node(mat("b", 0.9, {tdg::metadata_field("meta.y", 6)}));
    t.add_node(mat("c", 0.9, {tdg::metadata_field("meta.z", 1)}));
    t.add_edge(0, 1, DepType::kMatch);
    t.add_edge(1, 2, DepType::kMatch);
    tdg::analyze(t);
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 1;
    const net::Network n = sim::make_testbed(config);
    const core::Deployment d = core::try_deploy_greedy(t, n).value().deployment;
    const dataplane::NetworkConfig configs = dataplane::build_configs(t, n, d);

    std::map<std::pair<net::SwitchId, net::SwitchId>, std::int64_t> pair_bytes;
    for (const tdg::Edge& e : t.edges()) {
        const net::SwitchId u = d.switch_of(e.from);
        const net::SwitchId v = d.switch_of(e.to);
        if (u != v) pair_bytes[{u, v}] += e.metadata_bytes;
    }
    for (const auto& [u, config_u] : configs) {
        for (const dataplane::EgressDirective& eg : config_u.egress) {
            EXPECT_EQ(eg.total_bytes(), pair_bytes.at({u, eg.next_switch}));
        }
    }
}

TEST(EdgeCases, DpSplitAgreesWithBoundaryCutsOnDeployments) {
    const tdg::Tdg t = core::analyze(prog::real_programs());
    const core::DpSplitResult r = core::dp_split(t, 6, 1.0);
    // Re-derive the objective from the boundary table.
    const auto cuts = core::boundary_cuts(t);
    std::int64_t max_cut = 0;
    std::size_t position = 0;
    for (std::size_t i = 0; i + 1 < r.segments.size(); ++i) {
        position += r.segments[i].size();
        max_cut = std::max(max_cut, cuts[position]);
    }
    EXPECT_EQ(max_cut, r.max_cut_bytes);
}

TEST(EdgeCases, StrategiesHandleSingleProgram) {
    const std::vector<prog::Program> one{prog::make_program("nat")};
    const net::Network n = sim::make_testbed();
    baselines::BaselineOptions options;
    options.milp.time_limit_seconds = 2.0;
    for (const auto& strategy : baselines::all_strategies()) {
        const baselines::StrategyOutcome outcome = strategy->deploy(one, n, options);
        EXPECT_TRUE(core::verify(outcome.merged, n, outcome.deployment).ok)
            << strategy->name();
    }
}

TEST(EdgeCases, EmptyProgramListRejectedEverywhere) {
    EXPECT_THROW((void)core::analyze({}), std::invalid_argument);
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    EXPECT_THROW((void)baselines::union_programs({}, ranges), std::invalid_argument);
}

TEST(EdgeCases, MotivationRigAt1500PlusOverheadStaysWithinMtu) {
    // Wire size is clamped at the Ethernet MTU; payload shrinks instead.
    sim::MotivationConfig config;
    config.packets = 200;
    const sim::MotivationPoint p = sim::run_motivation(config, 1500, 108);
    EXPECT_GT(p.fct_increase, 0.0);
}

}  // namespace
}  // namespace hermes
