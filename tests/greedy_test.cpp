// Algorithm 2 tests, including the paper's Figure 4 worked example.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/objective.h"
#include "core/verifier.h"
#include "net/builders.h"
#include "sim/testbed.h"

namespace hermes::core {
namespace {

using tdg::DepType;
using tdg::NodeId;

tdg::Mat mat(const std::string& name, double resource) {
    return tdg::Mat(name, {tdg::header_field("h_" + name, 2)},
                    {tdg::Action{"act", {tdg::metadata_field("m_" + name, 4)}}}, 16,
                    resource);
}

// The Figure 4 TDG: five MATs a..e; metadata sizes chosen to reproduce the
// narrative exactly: first cut {a,b,c}|{d,e} carries the minimum 3 bytes,
// second cut {a}|{b,c} carries the minimum 4 bytes, final max overhead 4.
tdg::Tdg fig4_tdg() {
    tdg::Tdg t;
    for (const char* n : {"a", "b", "c", "d", "e"}) t.add_node(mat(n, 1.0));
    auto edge = [&](NodeId f, NodeId to, int bytes) {
        t.add_edge(f, to, DepType::kMatch);
        t.edges().back().metadata_bytes = bytes;
    };
    edge(0, 1, 2);  // a -> b
    edge(0, 2, 2);  // a -> c
    edge(1, 2, 5);  // b -> c
    edge(2, 3, 1);  // c -> d
    edge(2, 4, 2);  // c -> e
    edge(3, 4, 2);  // d -> e
    return t;
}

// Three switches, each tolerating exactly two of the unit-resource MATs
// (2 stages x capacity 1.0).
net::Network fig4_network() {
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 2;
    config.stage_capacity = 1.0;
    return sim::make_testbed(config);
}

TEST(SplitTdg, WholeTdgFitsNoSplit) {
    const tdg::Tdg t = fig4_tdg();
    const auto segments = split_tdg(t, {0, 1, 2, 3, 4}, 12, 1.0);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].size(), 5u);
}

TEST(SplitTdg, Figure4Splits) {
    const tdg::Tdg t = fig4_tdg();
    const auto segments = split_tdg(t, {0, 1, 2, 3, 4}, 2, 1.0);
    // The narrative: {a,b,c}|{d,e} first (3 bytes), then {a}|{b,c} (4 bytes).
    ASSERT_EQ(segments.size(), 3u);
    EXPECT_EQ(segments[0], (std::vector<NodeId>{0}));
    EXPECT_EQ(segments[1], (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(segments[2], (std::vector<NodeId>{3, 4}));
}

TEST(SplitTdg, OversizedMatThrows) {
    tdg::Tdg t;
    t.add_node(mat("huge", 3.0));
    EXPECT_THROW((void)split_tdg(t, {0}, 2, 1.0), std::runtime_error);
}

TEST(SplitTdg, EmptyInputYieldsNothing) {
    const tdg::Tdg t = fig4_tdg();
    EXPECT_TRUE(split_tdg(t, {}, 2, 1.0).empty());
}

TEST(SplitTdgFirstFit, FillsGreedily) {
    const tdg::Tdg t = fig4_tdg();
    const auto segments = split_tdg_first_fit(t, {0, 1, 2, 3, 4}, 2, 1.0);
    ASSERT_EQ(segments.size(), 3u);
    EXPECT_EQ(segments[0], (std::vector<NodeId>{0, 1}));  // resource-driven cut
    EXPECT_EQ(segments[1], (std::vector<NodeId>{2, 3}));
    EXPECT_EQ(segments[2], (std::vector<NodeId>{4}));
}

TEST(SplitTdgFirstFit, MetadataObliviousCutsCostMore) {
    // The whole point of Hermes: the first-fit cut carries more bytes.
    const tdg::Tdg t = fig4_tdg();
    const net::Network n = fig4_network();
    const GreedyOptions options;
    const auto min_cut = deploy_segments_on_chain(
        t, n, split_tdg(t, {0, 1, 2, 3, 4}, 2, 1.0), options);
    const auto first_fit = deploy_segments_on_chain(
        t, n, split_tdg_first_fit(t, {0, 1, 2, 3, 4}, 2, 1.0), options);
    EXPECT_LT(max_pair_metadata(t, min_cut.deployment),
              max_pair_metadata(t, first_fit.deployment));
}

TEST(Greedy, Figure4EndToEnd) {
    const tdg::Tdg t = fig4_tdg();
    const net::Network n = fig4_network();
    const GreedyResult result = greedy_deploy(t, n);
    EXPECT_EQ(result.segments.size(), 3u);
    // "As a result, the maximum per-packet byte overhead equals 4 bytes."
    EXPECT_EQ(max_pair_metadata(t, result.deployment), 4);
    const VerificationReport report = verify(t, n, result.deployment);
    EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                         : report.violations.front());
}

TEST(Greedy, SingleSwitchWhenEverythingFits) {
    const tdg::Tdg t = fig4_tdg();
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 12;
    const net::Network n = sim::make_testbed(config);
    const GreedyResult result = greedy_deploy(t, n);
    EXPECT_EQ(result.segments.size(), 1u);
    EXPECT_EQ(max_pair_metadata(t, result.deployment), 0);
    EXPECT_EQ(result.deployment.occupied_switches().size(), 1u);
}

TEST(Greedy, ThrowsWhenNotEnoughSwitches) {
    const tdg::Tdg t = fig4_tdg();
    sim::TestbedConfig config;
    config.switch_count = 2;  // needs 3
    config.stages = 2;
    const net::Network n = sim::make_testbed(config);
    EXPECT_THROW((void)greedy_deploy(t, n), std::runtime_error);
}

TEST(Greedy, Epsilon2LimitsChainLength) {
    const tdg::Tdg t = fig4_tdg();
    const net::Network n = fig4_network();
    GreedyOptions options;
    options.epsilon2 = 2;  // three segments never fit two switches
    EXPECT_THROW((void)greedy_deploy(t, n, options), std::runtime_error);
}

TEST(Greedy, Epsilon1LimitsChainLatency) {
    const tdg::Tdg t = fig4_tdg();
    const net::Network n = fig4_network();
    GreedyOptions options;
    options.epsilon1 = 1.0;  // each hop costs ~7us
    EXPECT_THROW((void)greedy_deploy(t, n, options), std::runtime_error);
}

TEST(Greedy, RoutesConnectConsecutiveSegments) {
    const tdg::Tdg t = fig4_tdg();
    const net::Network n = fig4_network();
    const GreedyResult result = greedy_deploy(t, n);
    EXPECT_EQ(result.deployment.routes.size(), 2u);
    for (const auto& [pair, path] : result.deployment.routes) {
        EXPECT_EQ(path.switches.front(), pair.first);
        EXPECT_EQ(path.switches.back(), pair.second);
    }
}

TEST(Greedy, SkipsNonProgrammableSwitches) {
    const tdg::Tdg t = fig4_tdg();
    net::Network n = fig4_network();
    // Add non-programmable middle switches; greedy must still work through
    // the programmable chain.
    net::SwitchProps legacy;
    legacy.programmable = false;
    const net::SwitchId extra = n.add_switch(legacy);
    n.add_link(extra, 0, 2.0);
    const GreedyResult result = greedy_deploy(t, n);
    for (const Placement& p : result.deployment.placements) {
        EXPECT_TRUE(n.props(p.sw).programmable);
    }
}

TEST(SelectSwitches, OrdersByProximityAndHonorsBounds) {
    net::TopologyConfig c;
    c.min_link_latency_us = 2.0;
    c.max_link_latency_us = 2.0;
    util::SplitMix64 rng(5);
    const net::Network n = net::linear_topology(5, c, rng);  // all programmable
    GreedyOptions options;
    const auto chain = select_switches(n, 0, options);
    EXPECT_EQ(chain, (std::vector<net::SwitchId>{0, 1, 2, 3, 4}));

    options.epsilon2 = 3;
    EXPECT_EQ(select_switches(n, 0, options).size(), 3u);

    options.epsilon2 = std::numeric_limits<std::int64_t>::max();
    options.epsilon1 = 10.0;  // each extra hop costs 4us (1+2+1)
    const auto bounded = select_switches(n, 0, options);
    EXPECT_LT(bounded.size(), 5u);
    EXPECT_THROW((void)select_switches(n, 99, options), std::invalid_argument);
}

TEST(Greedy, DeterministicAcrossRuns) {
    const tdg::Tdg t = fig4_tdg();
    const net::Network n = fig4_network();
    const GreedyResult a = greedy_deploy(t, n);
    const GreedyResult b = greedy_deploy(t, n);
    ASSERT_EQ(a.deployment.placements.size(), b.deployment.placements.size());
    for (std::size_t i = 0; i < a.deployment.placements.size(); ++i) {
        EXPECT_EQ(a.deployment.placements[i].sw, b.deployment.placements[i].sw);
        EXPECT_EQ(a.deployment.placements[i].stage, b.deployment.placements[i].stage);
    }
}

}  // namespace
}  // namespace hermes::core
