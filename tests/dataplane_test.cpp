// Data plane backend + interpreter tests: configuration synthesis from
// deployments, packet semantics, and the headline property — distributed
// execution with metadata piggybacking is observationally equivalent to
// running the merged TDG on one giant switch.
#include <gtest/gtest.h>

#include "core/hermes.h"
#include "dataplane/backend.h"
#include "dataplane/interp.h"
#include "prog/library.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"

namespace hermes::dataplane {
namespace {

Packet test_packet() {
    Packet p;
    p.set_header("ipv4.src_addr", 0x0a000001, 4);
    p.set_header("ipv4.dst_addr", 0x0a000002, 4);
    p.set_header("ipv4.protocol", 6, 1);
    p.set_header("ipv4.ttl", 64, 1);
    p.set_header("ipv4.dscp", 0, 1);
    p.set_header("l4.src_port", 12345, 2);
    p.set_header("l4.dst_port", 443, 2);
    p.set_header("ethernet.dst_addr", 0xaabbccddee01, 6);
    p.set_header("ethernet.src_addr", 0xaabbccddee02, 6);
    p.set_header("intrinsic.ingress_port", 3, 2);
    p.set_header("tcp.ecn", 0, 1);
    return p;
}

// ---- Packet -----------------------------------------------------------------

TEST(Packet, HeaderAndMetadataNamespaces) {
    Packet p;
    p.set_header("ipv4.ttl", 64, 1);
    p.set_metadata("meta.idx", 7, 4);
    EXPECT_EQ(p.header("ipv4.ttl")->value, 64u);
    EXPECT_EQ(p.metadata("meta.idx")->value, 7u);
    EXPECT_FALSE(p.header("meta.idx").has_value());
    EXPECT_FALSE(p.metadata("ipv4.ttl").has_value());
    EXPECT_EQ(p.field("meta.idx")->size_bytes, 4);
    EXPECT_EQ(p.field("ipv4.ttl")->value, 64u);
    EXPECT_FALSE(p.field("nope").has_value());
}

TEST(Packet, ClearMetadataKeepsHeaders) {
    Packet p;
    p.set_header("h", 1, 1);
    p.set_metadata("m", 2, 1);
    p.clear_metadata();
    EXPECT_TRUE(p.header("h").has_value());
    EXPECT_FALSE(p.metadata("m").has_value());
}

TEST(Packet, Validation) {
    Packet p;
    EXPECT_THROW(p.set_header("", 0, 1), std::invalid_argument);
    EXPECT_THROW(p.set_metadata("m", 0, 0), std::invalid_argument);
}

// ---- Action semantics ----------------------------------------------------------

TEST(ActionValue, DeterministicAndSizeTruncated) {
    const std::vector<FieldValue> inputs{{42, 4}};
    const auto a = action_value("t", "act", inputs, 2);
    const auto b = action_value("t", "act", inputs, 2);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, 1u << 16);
    const auto c = action_value("t", "act", {{43, 4}}, 2);
    EXPECT_NE(a, c);  // different inputs, different value (w.h.p.)
    const auto wide = action_value("t", "act", inputs, 8);
    EXPECT_GT(wide, 0u);
}

// ---- Backend --------------------------------------------------------------------

TEST(Backend, ConfigsCoverOccupiedSwitches) {
    const tdg::Tdg t = core::analyze({prog::make_program("countmin_sketch")});
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 1;  // one MAT per switch: forces full distribution
    const net::Network n = sim::make_testbed(config);
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    const NetworkConfig configs = build_configs(t, n, outcome.deployment);
    EXPECT_EQ(configs.size(), outcome.deployment.occupied_switches().size());
    // Every cross edge produced an egress directive upstream and an ingress
    // registration downstream.
    for (const tdg::Edge& e : t.edges()) {
        const net::SwitchId u = outcome.deployment.switch_of(e.from);
        const net::SwitchId v = outcome.deployment.switch_of(e.to);
        if (u == v || e.type == tdg::DepType::kReverseMatch) continue;
        const SwitchConfig& up = configs.at(u);
        const bool has_directive =
            std::any_of(up.egress.begin(), up.egress.end(),
                        [&](const EgressDirective& d) { return d.next_switch == v; });
        EXPECT_TRUE(has_directive);
        EXPECT_FALSE(configs.at(v).ingress_fields.empty());
    }
}

TEST(Backend, PiggybackFieldsAreUpstreamMetadata) {
    const tdg::Mat mat("m", {tdg::header_field("h", 2)},
                       {tdg::Action{"a",
                                    {tdg::metadata_field("meta.x", 4),
                                     tdg::header_field("ipv4.ttl", 1)}}},
                       16, 0.1);
    const auto fields = piggyback_fields(mat);
    ASSERT_EQ(fields.size(), 1u);  // header writes ride in the packet anyway
    EXPECT_EQ(fields.at("meta.x"), 4);
}

TEST(Backend, EgressBytesNeverExceedAnalyzerAccounting) {
    const tdg::Tdg t = core::analyze(prog::real_programs());
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 6;
    const net::Network n = sim::make_testbed(config);
    const core::DeployOutcome outcome = core::try_deploy_greedy(t, n).value();
    const NetworkConfig configs = build_configs(t, n, outcome.deployment);
    // The physically shipped bytes per pair are bounded by A_max-style
    // accounting (which over-counts action-type edges).
    for (const auto& [u, config_u] : configs) {
        for (const EgressDirective& d : config_u.egress) {
            EXPECT_LE(d.total_bytes(), t.total_metadata_bytes());
        }
    }
}

TEST(Backend, ShapeMismatchRejected) {
    const tdg::Tdg t = core::analyze({prog::make_program("nat")});
    const net::Network n = sim::make_testbed();
    core::Deployment bogus;
    EXPECT_THROW((void)build_configs(t, n, bogus), std::invalid_argument);
}

// ---- Monolithic interpreter -------------------------------------------------------

TEST(Interp, MonolithicRunsEveryTable) {
    const tdg::Tdg t = core::analyze({prog::make_program("l2l3_routing")});
    const InterpResult r = run_monolithic(t, test_packet());
    EXPECT_EQ(r.trace.size(), t.node_count());
    EXPECT_FALSE(r.writes.empty());
}

TEST(Interp, MetadataFlowsThroughDependencies) {
    // countmin: hash writes meta.counter_index; update matches it.
    const tdg::Tdg t = core::analyze({prog::make_program("countmin_sketch")});
    const InterpResult r = run_monolithic(t, test_packet());
    for (const ExecutionRecord& rec : r.trace) {
        EXPECT_TRUE(rec.matched) << t.node(rec.node).name();
    }
    EXPECT_TRUE(r.writes.count("meta.counter_index"));
    EXPECT_TRUE(r.writes.count("meta.cm_count"));
}

TEST(Interp, MissingHeaderCausesMiss) {
    const tdg::Tdg t = core::analyze({prog::make_program("countmin_sketch")});
    Packet empty;  // no headers at all
    const InterpResult r = run_monolithic(t, empty);
    for (const ExecutionRecord& rec : r.trace) EXPECT_FALSE(rec.matched);
    EXPECT_TRUE(r.writes.empty());
}

// ---- Distributed equivalence ------------------------------------------------------

void expect_equivalent(const tdg::Tdg& t, const net::Network& n,
                       const core::Deployment& d) {
    const NetworkConfig configs = build_configs(t, n, d);
    const InterpResult mono = run_monolithic(t, test_packet());
    const InterpResult dist = run_deployment(t, n, d, configs, test_packet());
    ASSERT_EQ(mono.writes.size(), dist.writes.size());
    for (const auto& [name, value] : mono.writes) {
        ASSERT_TRUE(dist.writes.count(name)) << name;
        EXPECT_EQ(dist.writes.at(name), value) << name;
    }
    EXPECT_EQ(mono.trace.size(), dist.trace.size());
}

TEST(Interp, SingleProgramFullyDistributedEquivalence) {
    const tdg::Tdg t = core::analyze({prog::make_program("countmin_sketch")});
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 1;  // every MAT on its own switch
    const net::Network n = sim::make_testbed(config);
    expect_equivalent(t, n, core::try_deploy_greedy(t, n).value().deployment);
}

TEST(Interp, SketchWorkloadEquivalence) {
    const tdg::Tdg t = core::analyze(prog::sketch_programs());
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 3;
    const net::Network n = sim::make_testbed(config);
    expect_equivalent(t, n, core::try_deploy_greedy(t, n).value().deployment);
}

TEST(Interp, RealProgramsEquivalenceAcrossStrategies) {
    // Merged ten-program workload deployed two different ways: both must
    // preserve processing semantics.
    const tdg::Tdg t = core::analyze(prog::real_programs());
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 6;
    const net::Network n = sim::make_testbed(config);
    expect_equivalent(t, n, core::try_deploy_greedy(t, n).value().deployment);

    std::vector<tdg::NodeId> all(t.node_count());
    for (tdg::NodeId v = 0; v < t.node_count(); ++v) all[v] = v;
    const core::GreedyResult first_fit = core::deploy_segments_on_chain(
        t, n, core::split_tdg_first_fit(t, all, config.stages, config.stage_capacity),
        {});
    expect_equivalent(t, n, first_fit.deployment);
}

TEST(Interp, WireBytesBoundedByInflightMetric) {
    const tdg::Tdg t = core::analyze(prog::real_programs());
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 6;
    const net::Network n = sim::make_testbed(config);
    const core::Deployment d = core::try_deploy_greedy(t, n).value().deployment;
    const InterpResult r = run_deployment(t, n, d, build_configs(t, n, d), test_packet());
    const std::int64_t bound = core::max_inflight_metadata(t, n, d);
    for (const int bytes : r.wire_bytes) {
        EXPECT_LE(bytes, bound);
        EXPECT_GE(bytes, 0);
    }
}

TEST(Interp, BrokenCoordinationBreaksEquivalence) {
    // Drop one egress directive: the downstream MAT must now miss, and the
    // write sets must diverge — proving the equivalence check has teeth.
    const tdg::Tdg t = core::analyze({prog::make_program("countmin_sketch")});
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 1;
    const net::Network n = sim::make_testbed(config);
    const core::Deployment d = core::try_deploy_greedy(t, n).value().deployment;
    NetworkConfig configs = build_configs(t, n, d);
    bool dropped = false;
    for (auto& [u, config_u] : configs) {
        if (!config_u.egress.empty()) {
            config_u.egress.clear();
            dropped = true;
            break;
        }
    }
    ASSERT_TRUE(dropped);
    const InterpResult mono = run_monolithic(t, test_packet());
    const InterpResult broken = run_deployment(t, n, d, configs, test_packet());
    EXPECT_LT(broken.writes.size(), mono.writes.size());
}

TEST(Interp, SyntheticProgramEquivalence) {
    prog::SyntheticConfig config;
    config.min_mats = 8;
    config.max_mats = 12;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        const tdg::Tdg t = core::analyze({prog::synthetic_program(config, seed, 0)});
        sim::TestbedConfig tb;
        tb.switch_count = 6;
        tb.stages = 12;
        const net::Network n = sim::make_testbed(tb);
        const core::Deployment d = core::try_deploy_greedy(t, n).value().deployment;

        // Synthetic headers are per-MAT unique: build a packet providing all.
        Packet packet;
        for (tdg::NodeId v = 0; v < t.node_count(); ++v) {
            for (const tdg::Field& f : t.node(v).match_fields()) {
                if (!f.is_metadata()) packet.set_header(f.name, 0x1234 + v, f.size_bytes);
            }
        }
        const NetworkConfig configs = build_configs(t, n, d);
        const InterpResult mono = run_monolithic(t, packet);
        const InterpResult dist = run_deployment(t, n, d, configs, packet);
        EXPECT_EQ(mono.writes, dist.writes) << "seed " << seed;
    }
}

}  // namespace
}  // namespace hermes::dataplane
