#include <gtest/gtest.h>

#include "core/verifier.h"
#include "net/builders.h"

namespace hermes::core {
namespace {

using tdg::DepType;

tdg::Mat mat(const std::string& name, double resource = 0.4) {
    return tdg::Mat(name, {tdg::header_field("h_" + name, 2)},
                    {tdg::Action{"a", {tdg::metadata_field("m_" + name, 4)}}}, 16,
                    resource);
}

// a -> b -> c
tdg::Tdg chain3() {
    tdg::Tdg t;
    t.add_node(mat("a"));
    t.add_node(mat("b"));
    t.add_node(mat("c"));
    t.add_edge(0, 1, DepType::kMatch);
    t.add_edge(1, 2, DepType::kMatch);
    return t;
}

net::Network linear3() {
    net::TopologyConfig c;
    c.min_link_latency_us = 5.0;
    c.max_link_latency_us = 5.0;
    c.stages = 4;
    util::SplitMix64 rng(1);
    return net::linear_topology(3, c, rng);
}

Deployment valid_deployment(const net::Network& n) {
    Deployment d;
    d.placements = {{0, 0}, {0, 1}, {1, 0}};
    d.routes[{0, 1}] = *net::shortest_path(n, 0, 1);
    return d;
}

TEST(Verifier, AcceptsValidDeployment) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    const VerificationReport r = verify(t, n, valid_deployment(n));
    EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_TRUE(r.violations.empty());
}

TEST(Verifier, PlacementCountMismatch) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    Deployment d;
    d.placements = {{0, 0}};
    EXPECT_FALSE(verify(t, n, d).ok);
}

TEST(Verifier, RejectsNonProgrammableSwitch) {
    const tdg::Tdg t = chain3();
    net::Network n = linear3();
    n.props(1).programmable = false;
    const VerificationReport r = verify(t, n, valid_deployment(n));
    EXPECT_FALSE(r.ok);
}

TEST(Verifier, RejectsInvalidStage) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    Deployment d = valid_deployment(n);
    d.placements[2].stage = 99;
    EXPECT_FALSE(verify(t, n, d).ok);
    d.placements[2].stage = -1;
    EXPECT_FALSE(verify(t, n, d).ok);
}

TEST(Verifier, RejectsUnknownSwitch) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    Deployment d = valid_deployment(n);
    d.placements[0].sw = 42;
    EXPECT_FALSE(verify(t, n, d).ok);
}

TEST(Verifier, RejectsStageOrderViolation) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    Deployment d = valid_deployment(n);
    d.placements[1].stage = 0;  // same stage as its predecessor a
    const VerificationReport r = verify(t, n, d);
    EXPECT_FALSE(r.ok);
}

TEST(Verifier, RejectsStageOverload) {
    tdg::Tdg t;
    t.add_node(mat("a", 0.7));
    t.add_node(mat("b", 0.7));  // independent, same stage -> 1.4 > 1.0
    const net::Network n = linear3();
    Deployment d;
    d.placements = {{0, 0}, {0, 0}};
    EXPECT_FALSE(verify(t, n, d).ok);
    d.placements = {{0, 0}, {0, 1}};
    EXPECT_TRUE(verify(t, n, d).ok);
}

TEST(Verifier, RejectsMissingRoute) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    Deployment d = valid_deployment(n);
    d.routes.clear();
    const VerificationReport r = verify(t, n, d);
    EXPECT_FALSE(r.ok);
}

TEST(Verifier, AcceptsRelayedRoute) {
    // Edge 0 -> 2 crossing switches 0 -> 2 with routes 0->1 and 1->2 only:
    // reachability through the route graph satisfies constraint (7).
    tdg::Tdg t;
    t.add_node(mat("a"));
    t.add_node(mat("b"));
    t.add_node(mat("c"));
    t.add_edge(0, 1, DepType::kMatch);
    t.add_edge(0, 2, DepType::kMatch);
    t.add_edge(1, 2, DepType::kMatch);
    const net::Network n = linear3();
    Deployment d;
    d.placements = {{0, 0}, {1, 0}, {2, 0}};
    d.routes[{0, 1}] = *net::shortest_path(n, 0, 1);
    d.routes[{1, 2}] = *net::shortest_path(n, 1, 2);
    const VerificationReport r = verify(t, n, d);
    EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations.front());
}

TEST(Verifier, RejectsCyclicSwitchPrecedence) {
    // a on sw0, b on sw1, c back on sw0 with b -> c: precedence 0->1->0.
    tdg::Tdg t;
    t.add_node(mat("a"));
    t.add_node(mat("b"));
    t.add_node(mat("c"));
    t.add_edge(0, 1, DepType::kMatch);
    t.add_edge(1, 2, DepType::kMatch);
    const net::Network n = linear3();
    Deployment d;
    d.placements = {{0, 0}, {1, 0}, {0, 1}};
    d.routes[{0, 1}] = *net::shortest_path(n, 0, 1);
    d.routes[{1, 0}] = *net::shortest_path(n, 1, 0);
    const VerificationReport r = verify(t, n, d);
    EXPECT_FALSE(r.ok);
}

TEST(Verifier, RejectsMismatchedRouteEndpoints) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    Deployment d = valid_deployment(n);
    d.routes[{0, 1}] = *net::shortest_path(n, 1, 2);  // wrong endpoints
    EXPECT_FALSE(verify(t, n, d).ok);
}

TEST(Verifier, EnforcesEpsilonBounds) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    const Deployment d = valid_deployment(n);
    VerifyOptions strict;
    strict.epsilon1 = 1.0;  // route latency is 7us
    EXPECT_FALSE(verify(t, n, d, strict).ok);
    VerifyOptions occupancy;
    occupancy.epsilon2 = 1;  // two switches occupied
    EXPECT_FALSE(verify(t, n, d, occupancy).ok);
    VerifyOptions loose;
    loose.epsilon1 = 100.0;
    loose.epsilon2 = 2;
    EXPECT_TRUE(verify(t, n, d, loose).ok);
}

TEST(Verifier, CollectsMultipleViolations) {
    const tdg::Tdg t = chain3();
    const net::Network n = linear3();
    Deployment d = valid_deployment(n);
    d.placements[1].stage = 0;
    d.routes.clear();
    const VerificationReport r = verify(t, n, d);
    EXPECT_FALSE(r.ok);
    EXPECT_GE(r.violations.size(), 2u);
}

}  // namespace
}  // namespace hermes::core
