#include <gtest/gtest.h>

#include "prog/library.h"
#include "prog/parser.h"
#include "prog/program.h"
#include "prog/synthetic.h"
#include "tdg/analyzer.h"

namespace hermes::prog {
namespace {

using tdg::DepType;
using tdg::header_field;
using tdg::metadata_field;

tdg::Mat mat(const std::string& name, std::vector<tdg::Field> matches,
             std::vector<tdg::Field> writes) {
    return tdg::Mat(name, std::move(matches), {tdg::Action{"a", std::move(writes)}}, 16,
                    0.1);
}

// ---- Program ---------------------------------------------------------------

TEST(Program, PairwiseInference) {
    Program p("demo");
    p.add_mat(mat("first", {header_field("h", 2)}, {metadata_field("meta.x", 4)}));
    p.add_mat(mat("second", {metadata_field("meta.x", 4)}, {metadata_field("meta.y", 2)}));
    const tdg::Tdg t = p.to_tdg();
    ASSERT_EQ(t.edge_count(), 1u);
    EXPECT_EQ(t.edges()[0].type, DepType::kMatch);
}

TEST(Program, DuplicateMatNameRejected) {
    Program p("demo");
    p.add_mat(mat("x", {header_field("h", 2)}, {}));
    EXPECT_THROW(p.add_mat(mat("x", {header_field("h", 2)}, {})), std::invalid_argument);
}

TEST(Program, GateCreatesSuccessorEdge) {
    Program p("demo");
    p.add_mat(mat("cond", {header_field("h1", 2)}, {metadata_field("meta.c", 1)}));
    p.add_mat(mat("then", {header_field("h2", 2)}, {metadata_field("meta.t", 1)}));
    p.add_gate("cond", "then");
    const tdg::Tdg t = p.to_tdg();
    ASSERT_EQ(t.edge_count(), 1u);
    EXPECT_EQ(t.edges()[0].type, DepType::kSuccessor);
}

TEST(Program, GateMustPointForward) {
    Program p("demo");
    p.add_mat(mat("a", {header_field("h1", 2)}, {}));
    p.add_mat(mat("b", {header_field("h2", 2)}, {}));
    EXPECT_THROW(p.add_gate("b", "a"), std::invalid_argument);
    EXPECT_THROW(p.add_gate("a", "a"), std::invalid_argument);
    EXPECT_THROW(p.add_gate("a", "missing"), std::out_of_range);
}

TEST(Program, ExplicitEdgeSupplementsInference) {
    Program p("demo");
    p.add_mat(mat("a", {header_field("h1", 2)}, {metadata_field("m1", 2)}));
    p.add_mat(mat("b", {header_field("h2", 2)}, {metadata_field("m2", 2)}));
    p.add_explicit_edge("a", "b", DepType::kAction);
    const tdg::Tdg t = p.to_tdg();
    ASSERT_EQ(t.edge_count(), 1u);
    EXPECT_EQ(t.edges()[0].type, DepType::kAction);
}

// ---- Library ---------------------------------------------------------------

TEST(Library, TenRealPrograms) {
    const auto names = program_names();
    EXPECT_EQ(names.size(), 10u);
    EXPECT_EQ(real_programs().size(), 10u);
}

TEST(Library, EveryProgramYieldsConnectedDag) {
    for (const auto& name : program_names()) {
        const Program p = make_program(name);
        EXPECT_GE(p.mat_count(), 3u) << name;
        const tdg::Tdg t = p.to_tdg();
        EXPECT_TRUE(t.is_dag()) << name;
        EXPECT_GE(t.edge_count(), 2u) << name;
    }
}

TEST(Library, UnknownProgramThrows) {
    EXPECT_THROW((void)make_program("nope"), std::out_of_range);
}

TEST(Library, ProgramsCarryMetadata) {
    // Analyzed TDGs must have positive per-edge metadata somewhere; that is
    // the whole point of the inter-switch coordination problem.
    for (const auto& name : program_names()) {
        tdg::Tdg t = make_program(name).to_tdg();
        tdg::analyze(t);
        EXPECT_GT(t.total_metadata_bytes(), 0) << name;
    }
}

TEST(Library, SketchFamilySharesHashStructure) {
    EXPECT_EQ(sketch_names().size(), 10u);
    const Program cm = sketch_program("countmin");
    const Program bf = sketch_program("bloom");
    EXPECT_TRUE(cm.mat(0).same_structure(bf.mat(0)));  // the shared hash MAT
    EXPECT_THROW((void)sketch_program("nope"), std::out_of_range);
}

TEST(Library, SketchMergingDeduplicatesHash) {
    std::vector<tdg::Tdg> tdgs;
    for (const Program& p : sketch_programs()) tdgs.push_back(p.to_tdg());
    const std::size_t separate_nodes = 3 * tdgs.size();
    const tdg::Tdg merged = tdg::analyze_programs(std::move(tdgs));
    // Ten hash MATs collapse into one: 30 - 9 = 21 nodes.
    EXPECT_EQ(merged.node_count(), separate_nodes - 9);
}

// ---- Synthetic generator -----------------------------------------------------

TEST(Synthetic, RespectsConfigRanges) {
    SyntheticConfig config;
    const Program p = synthetic_program(config, 99, 0);
    EXPECT_GE(p.mat_count(), 10u);
    EXPECT_LE(p.mat_count(), 20u);
    for (const tdg::Mat& m : p.mats()) {
        EXPECT_GE(m.resource_units(), 0.10);
        EXPECT_LE(m.resource_units(), 0.50);
    }
}

TEST(Synthetic, DeterministicPerSeedAndIndex) {
    SyntheticConfig config;
    const Program a = synthetic_program(config, 7, 3);
    const Program b = synthetic_program(config, 7, 3);
    EXPECT_EQ(a.mat_count(), b.mat_count());
    EXPECT_EQ(a.to_tdg().edge_count(), b.to_tdg().edge_count());
    const Program c = synthetic_program(config, 8, 3);
    const bool differs = a.mat_count() != c.mat_count() ||
                         a.to_tdg().edge_count() != c.to_tdg().edge_count();
    EXPECT_TRUE(differs);
}

TEST(Synthetic, DependencyProbabilityRoughlyHonored) {
    SyntheticConfig config;
    config.min_mats = config.max_mats = 20;
    std::size_t edges = 0, pairs = 0;
    for (int i = 0; i < 30; ++i) {
        const tdg::Tdg t = synthetic_program(config, 1234, i).to_tdg();
        edges += t.edge_count();
        pairs += t.node_count() * (t.node_count() - 1) / 2;
    }
    const double rate = static_cast<double>(edges) / static_cast<double>(pairs);
    EXPECT_NEAR(rate, 0.30, 0.05);
}

TEST(Synthetic, ProgramsAreDags) {
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(synthetic_program(SyntheticConfig{}, 55, i).to_tdg().is_dag());
    }
}

TEST(Synthetic, PaperWorkloadComposition) {
    const auto w50 = paper_workload(50, 1);
    EXPECT_EQ(w50.size(), 50u);
    EXPECT_EQ(w50.front().name(), "l2l3_routing");  // real programs first
    const auto w5 = paper_workload(5, 1);
    EXPECT_EQ(w5.size(), 5u);
    EXPECT_THROW((void)paper_workload(0, 1), std::invalid_argument);
}

TEST(Synthetic, BadConfigRejected) {
    SyntheticConfig config;
    config.min_mats = 5;
    config.max_mats = 3;
    EXPECT_THROW((void)synthetic_program(config, 1, 0), std::invalid_argument);
    SyntheticConfig config2;
    config2.dependency_probability = 1.5;
    EXPECT_THROW((void)synthetic_program(config2, 1, 0), std::invalid_argument);
}

// ---- Parser -------------------------------------------------------------------

constexpr const char* kSample = R"(
# demo program
program l3_demo
mat ipv4_lpm capacity=1024 resource=0.4 kind=lpm
  match ipv4.dst_addr:4:h
  write set_nexthop meta.nexthop:4:m
mat nexthop capacity=256 resource=0.2
  match meta.nexthop:4:m
  write rewrite ethernet.dst_addr:6:h
gate ipv4_lpm nexthop
)";

TEST(Parser, ParsesSample) {
    const Program p = parse_program(kSample);
    EXPECT_EQ(p.name(), "l3_demo");
    ASSERT_EQ(p.mat_count(), 2u);
    EXPECT_EQ(p.mat(0).name(), "ipv4_lpm");
    EXPECT_EQ(p.mat(0).match_kind(), tdg::MatchKind::kLpm);
    EXPECT_EQ(p.mat(0).rule_capacity(), 1024);
    const tdg::Tdg t = p.to_tdg();
    ASSERT_EQ(t.edge_count(), 1u);
    EXPECT_EQ(t.edges()[0].type, DepType::kMatch);  // field link beats the gate
}

TEST(Parser, ErrorsCarryLineNumbers) {
    try {
        (void)parse_program("program p\nmat t capacity=1 resource=0.1\n  match bad_field\n");
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& ex) {
        EXPECT_NE(std::string(ex.what()).find(":3:"), std::string::npos) << ex.what();
    }
}

TEST(Parser, TryParseReturnsStatus) {
    const auto bad = prog::try_parse_program(
        "program p\nmat t capacity=1 resource=0.1\n  match bad_field\n");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), hermes::util::StatusCode::kInvalidInput);
    EXPECT_EQ(bad.status().loc().line, 3);
    EXPECT_NE(bad.status().to_string().find(":3:"), std::string::npos);

    const auto good = prog::try_parse_program(kSample);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value().name(), "l3_demo");
}

TEST(Parser, TryLoadMissingFileIsIoStatus) {
    const auto missing = prog::try_load_program_file("/nonexistent.prog");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), hermes::util::StatusCode::kIo);
}

TEST(Parser, RejectsStructuralMistakes) {
    EXPECT_THROW((void)parse_program(""), std::invalid_argument);
    EXPECT_THROW((void)parse_program("mat t capacity=1 resource=0.1\n"),
                 std::invalid_argument);
    EXPECT_THROW((void)parse_program("program p\nprogram q\n"), std::invalid_argument);
    EXPECT_THROW((void)parse_program("program p\nbogus directive\n"),
                 std::invalid_argument);
    // mat without match/write
    EXPECT_THROW((void)parse_program("program p\nmat t capacity=1 resource=0.1\n"),
                 std::invalid_argument);
}

TEST(Parser, RoundTripPreservesTdg) {
    for (const auto& name : program_names()) {
        const Program original = make_program(name);
        const Program reparsed = parse_program(to_text(original));
        const tdg::Tdg a = original.to_tdg();
        const tdg::Tdg b = reparsed.to_tdg();
        ASSERT_EQ(a.node_count(), b.node_count()) << name;
        EXPECT_EQ(a.edge_count(), b.edge_count()) << name;
        for (const tdg::Edge& e : a.edges()) {
            const auto found = b.find_edge(e.from, e.to);
            ASSERT_TRUE(found.has_value()) << name;
            EXPECT_EQ(found->type, e.type) << name;
        }
    }
}

TEST(Parser, LoadMissingFileThrows) {
    EXPECT_THROW((void)load_program_file("/nonexistent/path.prog"), std::runtime_error);
}

}  // namespace
}  // namespace hermes::prog
