// Fault injection + self-healing repair: Network fail/recover semantics,
// PathOracle epoch-based selective invalidation, fault scripts, the
// Injector, the repair ladder, deadline-bounded degradation, and the
// failure-window traffic replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/deadline.h"
#include "core/hermes.h"
#include "core/objective.h"
#include "core/repair.h"
#include "core/verifier.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "net/path_oracle.h"
#include "net/topozoo.h"
#include "obs/obs.h"
#include "prog/synthetic.h"
#include "sim/replay.h"
#include "sim/testbed.h"

namespace hermes {
namespace {

net::Network diamond() {
    // 0 - 1 - 3 plus the detour 0 - 2 - 3 (heavier), all programmable.
    net::Network n;
    for (int i = 0; i < 4; ++i) {
        net::SwitchProps p;
        p.programmable = true;
        p.latency_us = 1.0;
        n.add_switch(p);
    }
    n.add_link(0, 1, 1.0);
    n.add_link(1, 3, 1.0);
    n.add_link(0, 2, 5.0);
    n.add_link(2, 3, 5.0);
    return n;
}

// ---- Deadline ------------------------------------------------------------

TEST(Deadline, DefaultIsInactive) {
    const core::Deadline d;
    EXPECT_FALSE(d.active());
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(std::isinf(d.remaining_seconds()));
    d.cancel();  // no-op
    EXPECT_FALSE(d.expired());
}

TEST(Deadline, AfterZeroIsAlreadyExpired) {
    const core::Deadline d = core::Deadline::after(0.0);
    EXPECT_TRUE(d.active());
    EXPECT_TRUE(d.expired());
    EXPECT_DOUBLE_EQ(d.remaining_seconds(), 0.0);
}

TEST(Deadline, CancellableCopiesShareTheFlag) {
    const core::Deadline d = core::Deadline::cancellable();
    const core::Deadline copy = d;
    EXPECT_TRUE(d.active());
    EXPECT_FALSE(copy.expired());
    d.cancel();
    EXPECT_TRUE(copy.expired());
    EXPECT_DOUBLE_EQ(copy.remaining_seconds(), 0.0);
}

// ---- Network fault surface ----------------------------------------------

TEST(NetworkFaults, FailLinkDropsItFromLiveAdjacency) {
    net::Network n = diamond();
    const std::uint64_t before = n.epoch();
    ASSERT_TRUE(n.fail_link(0, 1));
    EXPECT_GT(n.epoch(), before);
    EXPECT_FALSE(n.link_up(0, 1));
    EXPECT_FALSE(n.link_latency(0, 1).has_value());
    EXPECT_EQ(n.live_link_count(), 3u);
    EXPECT_EQ(n.links().size(), 4u);  // failed links keep their record
    // Failing again is a no-op and does not bump the epoch.
    const std::uint64_t after = n.epoch();
    EXPECT_FALSE(n.fail_link(0, 1));
    EXPECT_EQ(n.epoch(), after);
    ASSERT_TRUE(n.recover_link(1, 0));  // either endpoint order works
    EXPECT_TRUE(n.link_up(0, 1));
    EXPECT_EQ(n.live_link_count(), 4u);
}

TEST(NetworkFaults, FailSwitchDetachesIncidentLinksAndRecoversExactly) {
    net::Network n = diamond();
    ASSERT_TRUE(n.fail_switch(1));
    EXPECT_FALSE(n.switch_up(1));
    EXPECT_FALSE(n.link_up(0, 1));
    EXPECT_FALSE(n.link_up(1, 3));
    EXPECT_TRUE(n.link_up(0, 2));
    EXPECT_EQ(n.live_link_count(), 2u);
    // The incident links' own flags were not touched: recovery restores the
    // exact pre-failure state.
    ASSERT_TRUE(n.recover_switch(1));
    EXPECT_TRUE(n.link_up(0, 1));
    EXPECT_TRUE(n.link_up(1, 3));
    EXPECT_EQ(n.live_link_count(), 4u);
}

TEST(NetworkFaults, LinkFailedWhileSwitchDownStaysDownAfterSwitchRecovery) {
    net::Network n = diamond();
    ASSERT_TRUE(n.fail_switch(1));
    ASSERT_TRUE(n.fail_link(0, 1));  // its own flag flips while detached
    ASSERT_TRUE(n.recover_switch(1));
    EXPECT_FALSE(n.link_up(0, 1));  // still failed in its own right
    EXPECT_TRUE(n.link_up(1, 3));
    ASSERT_TRUE(n.recover_link(0, 1));
    EXPECT_TRUE(n.link_up(0, 1));
}

TEST(NetworkFaults, ProgrammableSwitchesAndCapacityExcludeDown) {
    net::Network n = diamond();
    const double full = n.total_programmable_capacity();
    ASSERT_TRUE(n.fail_switch(2));
    EXPECT_EQ(n.programmable_switches(), (std::vector<net::SwitchId>{0, 1, 3}));
    EXPECT_LT(n.total_programmable_capacity(), full);
    EXPECT_TRUE(n.is_connected());  // 0-1-3 still connected without 2
}

// ---- PathOracle selective invalidation -----------------------------------

TEST(PathOracleFaults, LinkDownEvictsOnlyAffectedTrees) {
    net::Network n = diamond();
    net::PathOracle oracle(n);
    // Warm all four trees.
    for (net::SwitchId s = 0; s < 4; ++s) (void)oracle.latencies(s);
    ASSERT_EQ(oracle.stats().tree_misses, 4u);

    ASSERT_TRUE(n.fail_link(0, 1));
    oracle.on_link_down(0, 1);
    // Every tree used (0,1) as a tree edge except none avoids it in this
    // graph? The detour is heavier, so all sources route the 0-1 side;
    // at minimum the eviction count is positive and below "everything".
    const auto stats = oracle.stats();
    EXPECT_GT(stats.tree_evictions, 0u);

    // Queries now match a cold oracle on the degraded topology.
    net::PathOracle fresh(n);
    for (net::SwitchId s = 0; s < 4; ++s) {
        for (net::SwitchId d = 0; d < 4; ++d) {
            EXPECT_DOUBLE_EQ(oracle.path_latency(s, d), fresh.path_latency(s, d))
                << s << "->" << d;
        }
    }
}

TEST(PathOracleFaults, UnrelatedTreesSurviveLinkFailure) {
    // Line 0-1-2 plus isolated pair 3-4: failing (3,4) must not evict the
    // 0/1/2 trees.
    net::Network n;
    for (int i = 0; i < 5; ++i) {
        net::SwitchProps p;
        p.programmable = true;
        n.add_switch(p);
    }
    n.add_link(0, 1, 1.0);
    n.add_link(1, 2, 1.0);
    n.add_link(3, 4, 1.0);
    net::PathOracle oracle(n);
    for (net::SwitchId s = 0; s < 3; ++s) (void)oracle.latencies(s);

    ASSERT_TRUE(n.fail_link(3, 4));
    oracle.on_link_down(3, 4);
    EXPECT_EQ(oracle.stats().tree_evictions, 0u);
    const auto before = oracle.stats();
    (void)oracle.latencies(0);  // must be a cache hit, not a recompute
    EXPECT_EQ(oracle.stats().tree_misses, before.tree_misses);
    EXPECT_EQ(oracle.stats().tree_hits, before.tree_hits + 1);
}

TEST(PathOracleFaults, DownEndpointQueriesReturnEmpty) {
    net::Network n = diamond();
    net::PathOracle oracle(n);
    ASSERT_TRUE(n.fail_switch(2));
    oracle.on_switch_down(2);
    EXPECT_FALSE(oracle.path(0, 2).has_value());
    EXPECT_FALSE(oracle.path(2, 0).has_value());
    EXPECT_TRUE(std::isinf(oracle.path_latency(0, 2)));
    // Unaffected pairs still resolve.
    ASSERT_TRUE(oracle.path(0, 3).has_value());
}

TEST(PathOracleFaults, RecoveryRestoresShorterPaths) {
    net::Network n = diamond();
    net::PathOracle oracle(n);
    ASSERT_TRUE(n.fail_link(0, 1));
    oracle.on_link_down(0, 1);
    const double detour = oracle.path_latency(0, 3);
    ASSERT_TRUE(n.recover_link(0, 1));
    oracle.on_link_up(0, 1);
    const double direct = oracle.path_latency(0, 3);
    EXPECT_LT(direct, detour);
    net::PathOracle fresh(n);
    EXPECT_DOUBLE_EQ(direct, fresh.path_latency(0, 3));
}

TEST(PathOracleFaults, KPathCacheDropsPathsThroughFailedElements) {
    net::Network n = diamond();
    net::PathOracle oracle(n);
    const auto before = oracle.k_paths(0, 3, 2);
    ASSERT_EQ(before.size(), 2u);
    ASSERT_TRUE(n.fail_link(0, 1));
    oracle.on_link_down(0, 1);
    const auto after = oracle.k_paths(0, 3, 2);
    ASSERT_EQ(after.size(), 1u);  // only the detour survives
    EXPECT_FALSE(after.front().contains(1) &&
                 after.front().switches.front() == 0 &&
                 after.front().switches[1] == 1);
    EXPECT_EQ(after.front().switches, (std::vector<net::SwitchId>{0, 2, 3}));
}

TEST(PathOracleFaults, SequenceMatchesFreshOracleOnWan) {
    // Random fail/recover sequence on a WAN topology: after every event the
    // notified shared oracle answers exactly like a cold oracle.
    net::Network n = net::table3_topology(4);
    net::PathOracle oracle(n);
    fault::Injector injector(n, &oracle);
    const auto script = fault::random_fault_script(n, 99, {});
    ASSERT_FALSE(script.empty());
    const std::vector<net::SwitchId> probes{0, 5, 11, 23};
    for (const fault::FaultEvent& e : script) {
        injector.apply(e);
        net::PathOracle fresh(n);
        for (const net::SwitchId s : probes) {
            for (const net::SwitchId d : probes) {
                EXPECT_DOUBLE_EQ(oracle.path_latency(s, d), fresh.path_latency(s, d))
                    << to_string(e.kind) << " " << e.a << " " << e.b;
            }
        }
    }
}

// ---- Fault scripts -------------------------------------------------------

TEST(FaultScript, FormatParseRoundTrip) {
    std::vector<fault::FaultEvent> events{
        {10.0, fault::FaultKind::kLinkDown, 0, 1},
        {20.5, fault::FaultKind::kSwitchDown, 2, 0},
        {30.0, fault::FaultKind::kLinkUp, 0, 1},
        {40.0, fault::FaultKind::kSwitchUp, 2, 0},
    };
    const std::string text = fault::format_fault_script(events);
    auto parsed = fault::parse_fault_script(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    ASSERT_EQ(parsed.value().size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_DOUBLE_EQ(parsed.value()[i].at_us, events[i].at_us);
        EXPECT_EQ(parsed.value()[i].kind, events[i].kind);
        EXPECT_EQ(parsed.value()[i].a, events[i].a);
        if (events[i].is_link()) {
            EXPECT_EQ(parsed.value()[i].b, events[i].b);
        }
    }
}

TEST(FaultScript, ParseHandlesCommentsSortingAndErrors) {
    const auto ok = fault::parse_fault_script(
        "# header comment\n"
        "30 link-up 0 1   # inline comment\n"
        "\n"
        "10 link-down 0 1\n");
    ASSERT_TRUE(ok.ok());
    ASSERT_EQ(ok.value().size(), 2u);
    EXPECT_EQ(ok.value()[0].kind, fault::FaultKind::kLinkDown);  // sorted by time

    EXPECT_FALSE(fault::parse_fault_script("oops link-down 0 1").ok());
    EXPECT_FALSE(fault::parse_fault_script("5 melt-down 0").ok());
    EXPECT_FALSE(fault::parse_fault_script("5 link-down 0").ok());
    EXPECT_FALSE(fault::parse_fault_script("5 switch-down 0 extra").ok());
    EXPECT_FALSE(fault::parse_fault_script("5 link-down 3 3").ok());
    const auto bad = fault::parse_fault_script("1 link-down 0 1\nbroken\n");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().loc().line, 2);
}

TEST(FaultScript, RandomScriptIsDeterministicAndBounded) {
    const net::Network n = net::table3_topology(2);
    fault::ScriptConfig config;
    config.events = 30;
    config.max_concurrent = 2;
    const auto a = fault::random_fault_script(n, 7, config);
    const auto b = fault::random_fault_script(n, 7, config);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].a, b[i].a);
        EXPECT_EQ(a[i].b, b[i].b);
        EXPECT_DOUBLE_EQ(a[i].at_us, b[i].at_us);
    }
    EXPECT_NE(fault::random_fault_script(n, 8, config).size() == a.size() &&
                  std::equal(a.begin(), a.end(),
                             fault::random_fault_script(n, 8, config).begin(),
                             [](const fault::FaultEvent& x, const fault::FaultEvent& y) {
                                 return x.kind == y.kind && x.a == y.a && x.b == y.b;
                             }),
              true);
    // Replay order never exceeds max_concurrent open failures and times are
    // ascending.
    std::size_t open = 0, peak = 0;
    double last = -1.0;
    for (const fault::FaultEvent& e : a) {
        EXPECT_GE(e.at_us, last);
        last = e.at_us;
        if (e.is_failure()) {
            peak = std::max(peak, ++open);
        } else if (open > 0) {
            --open;
        }
    }
    EXPECT_LE(peak, config.max_concurrent);
}

TEST(Injector, CountsAppliedAndNoops) {
    net::Network n = diamond();
    obs::Sink sink;
    fault::Injector injector(n, nullptr, &sink);
    EXPECT_TRUE(injector.apply({0.0, fault::FaultKind::kLinkDown, 0, 1}));
    EXPECT_FALSE(injector.apply({1.0, fault::FaultKind::kLinkDown, 0, 1}));  // no-op
    EXPECT_TRUE(injector.apply({2.0, fault::FaultKind::kSwitchDown, 2, 0}));
    EXPECT_FALSE(injector.apply({3.0, fault::FaultKind::kSwitchUp, 0, 0}));  // up already
    EXPECT_EQ(injector.applied(), 2);
    EXPECT_EQ(injector.noops(), 2);
    EXPECT_EQ(sink.counter("fault.applied").value(), 2);
    EXPECT_EQ(sink.counter("fault.noops").value(), 2);
    EXPECT_THROW(injector.apply({4.0, fault::FaultKind::kSwitchDown, 99, 0}),
                 std::out_of_range);
}

// ---- Damage classification and the repair ladder -------------------------

struct Scenario {
    net::Network net;
    tdg::Tdg merged;
    core::Deployment deployment;
};

Scenario testbed_scenario(std::size_t switches = 6, int programs = 6) {
    sim::TestbedConfig config;
    config.switch_count = switches;
    Scenario s{sim::make_testbed(config), core::analyze(prog::paper_workload(programs, 11)),
               {}};
    s.deployment = core::try_deploy_greedy(s.merged, s.net).value().deployment;
    return s;
}

TEST(Repair, ClassifyFindsStrandedMatsAndDeadRoutes) {
    Scenario s = testbed_scenario();
    ASSERT_TRUE(core::classify_damage(s.merged, s.net, s.deployment).intact());

    const net::SwitchId victim = s.deployment.occupied_switches().front();
    ASSERT_TRUE(s.net.fail_switch(victim));
    const core::DamageReport damage =
        core::classify_damage(s.merged, s.net, s.deployment);
    EXPECT_FALSE(damage.intact());
    EXPECT_FALSE(damage.stranded_mats.empty());
    for (const tdg::NodeId a : damage.stranded_mats) {
        EXPECT_EQ(s.deployment.placements[a].sw, victim);
    }
}

TEST(Repair, IntactDeploymentShortCircuits) {
    Scenario s = testbed_scenario();
    obs::Sink sink;
    core::RepairOptions options;
    options.sink = &sink;
    const core::RepairResult r = core::repair(s.merged, s.net, s.deployment, options);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.status, "intact");
    EXPECT_EQ(r.replaced_mats, 0);
    EXPECT_EQ(sink.counter("repair.events").value(), 1);
    EXPECT_EQ(sink.counter("repair.deadline_aborts").value(), 0);
}

TEST(Repair, SingleLinkFailureRepairsByReroutingOnly) {
    // Diamond: both MAT hosts survive a link failure, so the repair must be
    // reroute-only — zero MATs move (the ISSUE's acceptance criterion). Cap
    // per-switch stages so the workload spreads over at least two switches.
    net::Network n = diamond();
    for (net::SwitchId u = 0; u < n.switch_count(); ++u) n.props(u).stages = 4;
    n.bump_epoch();
    const tdg::Tdg merged = core::analyze(prog::paper_workload(4, 17));
    core::Deployment d = core::try_deploy_greedy(merged, n).value().deployment;
    const auto occupied = d.occupied_switches();
    ASSERT_GE(occupied.size(), 2u);

    // Fail a link on some recorded route.
    ASSERT_FALSE(d.routes.empty());
    const net::Path& route = d.routes.begin()->second;
    ASSERT_GE(route.switches.size(), 2u);
    net::PathOracle oracle(n);
    fault::Injector injector(n, &oracle);
    ASSERT_TRUE(injector.apply(
        {0.0, fault::FaultKind::kLinkDown, route.switches[0], route.switches[1]}));

    obs::Sink sink;
    core::RepairOptions options;
    options.sink = &sink;
    options.oracle = &oracle;
    const core::RepairResult r = core::repair(merged, n, d, options);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, "reroute");
    EXPECT_EQ(r.replaced_mats, 0);
    EXPECT_GT(r.rerouted_pairs, 0);
    EXPECT_EQ(sink.counter("repair.reroute_only").value(), 1);
    EXPECT_EQ(sink.counter("repair.replaced_mats").value(), 0);
    EXPECT_TRUE(core::verify(merged, n, r.deployment).ok);
    // Placements untouched.
    for (std::size_t i = 0; i < d.placements.size(); ++i) {
        EXPECT_EQ(d.placements[i].sw, r.deployment.placements[i].sw);
    }
}

TEST(Repair, SwitchFailureEscalatesToReplacement) {
    Scenario s = testbed_scenario();
    net::PathOracle oracle(s.net);
    fault::Injector injector(s.net, &oracle);
    const net::SwitchId victim = s.deployment.occupied_switches().front();
    ASSERT_TRUE(injector.apply({0.0, fault::FaultKind::kSwitchDown, victim, 0}));

    obs::Sink sink;
    core::RepairOptions options;
    options.sink = &sink;
    options.oracle = &oracle;
    const core::RepairResult r = core::repair(s.merged, s.net, s.deployment, options);
    ASSERT_TRUE(r.ok) << r.status;
    EXPECT_EQ(r.status, "replace");
    EXPECT_GT(r.replaced_mats, 0);
    EXPECT_TRUE(core::verify(s.merged, s.net, r.deployment).ok);
    for (const core::Placement& p : r.deployment.placements) {
        EXPECT_NE(p.sw, victim);
    }
    EXPECT_EQ(sink.counter("repair.deadline_aborts").value(), 0);
}

TEST(Repair, InfeasibleWhenNoCapacitySurvives) {
    Scenario s = testbed_scenario(3, 6);
    fault::Injector injector(s.net);
    for (net::SwitchId u = 0; u < s.net.switch_count(); ++u) {
        injector.apply({0.0, fault::FaultKind::kSwitchDown, u, 0});
    }
    const core::RepairResult r = core::repair(s.merged, s.net, s.deployment);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.status, "infeasible");
    // The original deployment comes back untouched.
    ASSERT_EQ(r.deployment.placements.size(), s.deployment.placements.size());
    for (std::size_t i = 0; i < s.deployment.placements.size(); ++i) {
        EXPECT_EQ(r.deployment.placements[i].sw, s.deployment.placements[i].sw);
    }
}

TEST(Repair, MilpEscalationImprovesOrMatchesGreedy) {
    Scenario s = testbed_scenario(6, 4);
    net::PathOracle oracle(s.net);
    fault::Injector injector(s.net, &oracle);
    const net::SwitchId victim = s.deployment.occupied_switches().front();
    ASSERT_TRUE(injector.apply({0.0, fault::FaultKind::kSwitchDown, victim, 0}));

    core::RepairOptions greedy_only;
    greedy_only.oracle = &oracle;
    const core::RepairResult g = core::repair(s.merged, s.net, s.deployment, greedy_only);
    ASSERT_TRUE(g.ok);

    core::RepairOptions with_milp = greedy_only;
    with_milp.allow_milp = true;
    with_milp.milp.time_limit_seconds = 30.0;
    const core::RepairResult m = core::repair(s.merged, s.net, s.deployment, with_milp);
    ASSERT_TRUE(m.ok) << m.status;
    EXPECT_TRUE(m.status == "milp" || m.status == "replace") << m.status;
    EXPECT_LE(core::max_pair_metadata(s.merged, m.deployment),
              core::max_pair_metadata(s.merged, g.deployment));
    EXPECT_TRUE(core::verify(s.merged, s.net, m.deployment).ok);
}

TEST(Repair, DeadlineTripDegradesToFallbackWithoutThrowing) {
    // A tight repair budget on an instance whose P#1 formulation builds but
    // whose exact solve takes ~1 s (~20x the budget): the greedy rung
    // finishes well inside the budget, the MILP escalation cannot, its
    // branch-and-bound workers poll the token and stop, and the ladder
    // returns the greedy incumbent flagged as a deadline fallback — no
    // exception. The budget is 50 ms on a normal build, scaled up from a
    // measured unbounded greedy repair under sanitizers (where everything
    // is ~10x slower, preserving the greedy << deadline << MILP ordering).
    // The node LPs are pinned to the retained eta kernel: the sparse LU
    // kernel closes every repair instance the formulation accepts at the
    // root in a few ms, so no realistic budget would trip mid-search — the
    // eta kernel keeps this instance in the hopeless-for-MILP regime the
    // test needs, and the fallback ladder under test is kernel-agnostic.
    sim::TestbedConfig testbed;
    testbed.switch_count = 6;
    Scenario s{sim::make_testbed(testbed),
               core::analyze(prog::paper_workload(6, 23)),
               {}};
    s.deployment = core::try_deploy_greedy(s.merged, s.net).value().deployment;
    net::PathOracle oracle(s.net);
    fault::Injector injector(s.net, &oracle);
    const net::SwitchId victim = s.deployment.occupied_switches().front();
    ASSERT_TRUE(injector.apply({0.0, fault::FaultKind::kSwitchDown, victim, 0}));

    // Calibration run: greedy rung only, no deadline.
    core::RepairOptions calibrate;
    calibrate.oracle = &oracle;
    const core::RepairResult baseline = core::repair(s.merged, s.net, s.deployment,
                                                     calibrate);
    ASSERT_TRUE(baseline.ok) << baseline.status;

    obs::Sink sink;
    core::RepairOptions options;
    options.sink = &sink;
    options.oracle = &oracle;
    options.allow_milp = true;
    options.milp.time_limit_seconds = 60.0;
    options.milp.lp_use_eta_basis = true;
    // Plenty for the (now fully warm) greedy rung, hopeless for the MILP
    // formulation + branch and bound on this instance.
    options.deadline =
        core::Deadline::after(std::max(0.05, 10.0 * baseline.repair_seconds));
    core::RepairResult r;
    ASSERT_NO_THROW(r = core::repair(s.merged, s.net, s.deployment, options));
    ASSERT_TRUE(r.ok) << r.status;
    EXPECT_EQ(r.status, "fallback(deadline)");
    EXPECT_TRUE(core::verify(s.merged, s.net, r.deployment).ok);
    EXPECT_EQ(sink.counter("repair.deadline_aborts").value(), 1);
}

// ---- 50-event seeded WAN scenario ----------------------------------------

// Runs the full fail -> notify oracle -> repair -> verify loop over a seeded
// script and returns a fingerprint of the evolution (status sequence +
// objective per event).
std::vector<std::pair<std::string, std::int64_t>> run_scenario(int threads) {
    net::Network n = net::table3_topology(10);
    const tdg::Tdg merged = core::analyze(prog::paper_workload(10, 31));
    net::PathOracle oracle(n);
    core::HermesOptions deploy_options;
    deploy_options.oracle = &oracle;
    deploy_options.threads = threads;
    core::Deployment current = core::try_deploy_greedy(merged, n, deploy_options).value().deployment;

    fault::ScriptConfig config;
    config.events = 50;
    config.max_concurrent = 2;
    const auto script = fault::random_fault_script(n, 1234, config);
    EXPECT_EQ(script.size(), 50u);

    fault::Injector injector(n, &oracle);
    core::RepairOptions repair_options;
    repair_options.oracle = &oracle;
    repair_options.threads = threads;

    std::vector<std::pair<std::string, std::int64_t>> fingerprint;
    for (const fault::FaultEvent& e : script) {
        injector.apply(e);
        const core::RepairResult r = core::repair(merged, n, current, repair_options);
        EXPECT_TRUE(r.ok) << to_string(e.kind) << " " << e.a << " " << e.b << ": "
                          << r.status;
        const core::VerificationReport report = core::verify(merged, n, r.deployment);
        EXPECT_TRUE(report.ok) << (report.violations.empty()
                                       ? r.status
                                       : report.violations.front());
        current = r.deployment;
        fingerprint.emplace_back(r.status, core::max_pair_metadata(merged, current));
    }
    return fingerprint;
}

TEST(Repair, FiftyEventScriptSurvivesAndIsDeterministicAcrossThreadCounts) {
    const auto serial = run_scenario(1);
    ASSERT_EQ(serial.size(), 50u);
    const auto parallel = run_scenario(4);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].first, parallel[i].first) << "event " << i;
        EXPECT_EQ(serial[i].second, parallel[i].second) << "event " << i;
    }
}

// ---- Failure-window replay -----------------------------------------------

TEST(Replay, CountsPacketsLostBeforeRepairAndAmaxDelta) {
    Scenario s = testbed_scenario();
    net::PathOracle oracle(s.net);
    fault::Injector injector(s.net, &oracle);
    const net::SwitchId victim = s.deployment.occupied_switches().front();
    ASSERT_TRUE(injector.apply({0.0, fault::FaultKind::kSwitchDown, victim, 0}));

    core::RepairOptions options;
    options.oracle = &oracle;
    const core::RepairResult r = core::repair(s.merged, s.net, s.deployment, options);
    ASSERT_TRUE(r.ok);

    obs::Sink sink;
    sim::ReplayConfig config;
    config.window_us = 1000.0;
    config.repair_done_us = 400.0;
    config.flow_interval_us = 100.0;
    config.flow.payload_bytes_total = 1460 * 50;
    config.sim.sink = &sink;
    const sim::ReplayReport report = sim::replay_failure_window(
        s.merged, s.net, s.deployment, r.deployment, config, &oracle);
    EXPECT_EQ(report.flows_total, 10);
    EXPECT_EQ(report.flows_lost, 4);  // launches at 0,100,200,300 ride the dead one
    EXPECT_GT(report.packets_lost_before_repair, 0);
    EXPECT_GT(report.post_fct_us, 0.0);
    EXPECT_EQ(report.amax_delta_bytes, report.post_amax_bytes - report.pre_amax_bytes);
    EXPECT_EQ(sink.counter("replay.flows").value(), 10);
    EXPECT_EQ(sink.counter("replay.flows_lost").value(), 4);
}

TEST(Replay, IntactDeploymentLosesNothing) {
    Scenario s = testbed_scenario();
    sim::ReplayConfig config;
    config.flow.payload_bytes_total = 1460 * 10;
    const sim::ReplayReport report = sim::replay_failure_window(
        s.merged, s.net, s.deployment, s.deployment, config, nullptr);
    EXPECT_GT(report.flows_total, 0);
    EXPECT_EQ(report.flows_lost, 0);
    EXPECT_EQ(report.packets_lost_before_repair, 0);
    EXPECT_EQ(report.amax_delta_bytes, 0);
}

// ---- deployment_hops over failed hardware (regression) -------------------
// deployment_hops/hops_from_path used to build hop lists straight through
// failed links and switches, silently simulating traffic on dead hardware.

TEST(DeploymentHops, HopsFromPathRejectsDeadHardware) {
    net::Network n = diamond();
    net::Path p;
    p.switches = {0, 1, 3};
    EXPECT_EQ(sim::hops_from_path(n, p).size(), 2u);
    ASSERT_TRUE(n.fail_link(0, 1));
    EXPECT_THROW((void)sim::hops_from_path(n, p), std::invalid_argument);
    ASSERT_TRUE(n.recover_link(0, 1));
    ASSERT_TRUE(n.fail_switch(1));
    EXPECT_THROW((void)sim::hops_from_path(n, p), std::invalid_argument);
}

TEST(DeploymentHops, ThrowsWhenOccupiedSwitchIsDown) {
    Scenario s = testbed_scenario();
    EXPECT_FALSE(sim::deployment_hops(s.merged, s.net, s.deployment).empty());
    ASSERT_TRUE(s.net.fail_switch(s.deployment.occupied_switches().front()));
    EXPECT_THROW((void)sim::deployment_hops(s.merged, s.net, s.deployment),
                 std::runtime_error);
}

TEST(DeploymentHops, ReroutesRecordedRouteAroundFailedLink) {
    // Same setup as the reroute-only repair test: both MAT hosts survive a
    // link failure on a recorded route, and the diamond's heavier detour
    // stays available.
    net::Network n = diamond();
    for (net::SwitchId u = 0; u < n.switch_count(); ++u) n.props(u).stages = 4;
    n.bump_epoch();
    const tdg::Tdg merged = core::analyze(prog::paper_workload(4, 17));
    core::Deployment d = core::try_deploy_greedy(merged, n).value().deployment;
    ASSERT_FALSE(d.routes.empty());
    const auto sum_propagation = [](const std::vector<sim::HopSpec>& hops) {
        double total = 0.0;
        for (const sim::HopSpec& h : hops) total += h.propagation_us;
        return total;
    };
    const double intact_prop = sum_propagation(sim::deployment_hops(merged, n, d));

    const net::Path& route = d.routes.begin()->second;
    ASSERT_GE(route.switches.size(), 2u);
    ASSERT_TRUE(n.fail_link(route.switches[0], route.switches[1]));
    // The recorded route is dead; the hop list must follow a live path (the
    // old behavior returned the intact hop list unchanged).
    const auto rerouted = sim::deployment_hops(merged, n, d);
    for (const sim::HopSpec& h : rerouted) EXPECT_GE(h.propagation_us, 0.0);
    EXPECT_GT(sum_propagation(rerouted), intact_prop);
}

TEST(Replay, FailedRepairLosesPostWindowFlowsToo) {
    Scenario s = testbed_scenario();
    fault::Injector injector(s.net);
    const net::SwitchId victim = s.deployment.occupied_switches().front();
    ASSERT_TRUE(injector.apply({0.0, fault::FaultKind::kSwitchDown, victim, 0}));
    sim::ReplayConfig config;
    config.flow.payload_bytes_total = 1460 * 10;
    const sim::ReplayReport report = sim::replay_failure_window(
        s.merged, s.net, s.deployment, core::Deployment{}, config, nullptr);
    EXPECT_EQ(report.flows_lost, report.flows_total);
}

}  // namespace
}  // namespace hermes
