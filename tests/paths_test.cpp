#include <gtest/gtest.h>

#include <cmath>

#include "net/paths.h"

namespace hermes::net {
namespace {

SwitchProps sw(double latency = 1.0) {
    SwitchProps p;
    p.latency_us = latency;
    return p;
}

// 0 --2-- 1 --2-- 2
//  \------8------/   (direct slow link 0-2)
Network triangle() {
    Network n;
    for (int i = 0; i < 3; ++i) n.add_switch(sw());
    n.add_link(0, 1, 2.0);
    n.add_link(1, 2, 2.0);
    n.add_link(0, 2, 8.0);
    return n;
}

TEST(Paths, PathLatencyCountsSwitchesAndLinks) {
    const Network n = triangle();
    // 0-1-2: t_s x3 + 2 + 2 = 7.
    EXPECT_DOUBLE_EQ(path_latency(n, {0, 1, 2}), 7.0);
    // direct: t_s x2 + 8 = 10.
    EXPECT_DOUBLE_EQ(path_latency(n, {0, 2}), 10.0);
    EXPECT_DOUBLE_EQ(path_latency(n, {0}), 1.0);
    EXPECT_DOUBLE_EQ(path_latency(n, {}), 0.0);
    // A loopy walk over existing links is still computable.
    EXPECT_DOUBLE_EQ(path_latency(n, {0, 1, 0}), 7.0);
}

TEST(Paths, PathLatencyRejectsMissingLink) {
    Network n;
    n.add_switch(sw());
    n.add_switch(sw());
    EXPECT_THROW((void)path_latency(n, {0, 1}), std::invalid_argument);
}

TEST(Paths, ShortestPathPrefersTwoHop) {
    const Network n = triangle();
    const auto p = shortest_path(n, 0, 2);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->switches, (std::vector<SwitchId>{0, 1, 2}));
    EXPECT_DOUBLE_EQ(p->latency_us, 7.0);
    EXPECT_EQ(p->hop_count(), 2u);
    EXPECT_TRUE(p->contains(1));
    EXPECT_FALSE(p->contains(3));
}

TEST(Paths, ShortestPathSelfIsTrivial) {
    const Network n = triangle();
    const auto p = shortest_path(n, 1, 1);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->switches, (std::vector<SwitchId>{1}));
    EXPECT_DOUBLE_EQ(p->latency_us, 1.0);
}

TEST(Paths, ShortestPathDisconnected) {
    Network n;
    n.add_switch(sw());
    n.add_switch(sw());
    EXPECT_FALSE(shortest_path(n, 0, 1).has_value());
}

TEST(Paths, ShortestLatenciesAllTargets) {
    const Network n = triangle();
    const auto dist = shortest_latencies(n, 0);
    EXPECT_DOUBLE_EQ(dist[0], 1.0);   // own switch latency
    EXPECT_DOUBLE_EQ(dist[1], 4.0);   // 1 + 2 + 1
    EXPECT_DOUBLE_EQ(dist[2], 7.0);
}

TEST(Paths, ShortestLatenciesUnreachableInfinite) {
    Network n;
    n.add_switch(sw());
    n.add_switch(sw());
    const auto dist = shortest_latencies(n, 0);
    EXPECT_TRUE(std::isinf(dist[1]));
}

TEST(Paths, SwitchLatencyInfluencesRouting) {
    // Middle switch so slow that the direct link wins.
    Network n;
    n.add_switch(sw(1.0));
    n.add_switch(sw(50.0));
    n.add_switch(sw(1.0));
    n.add_link(0, 1, 2.0);
    n.add_link(1, 2, 2.0);
    n.add_link(0, 2, 8.0);
    const auto p = shortest_path(n, 0, 2);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->switches, (std::vector<SwitchId>{0, 2}));
}

TEST(Paths, KShortestReturnsDistinctAscending) {
    const Network n = triangle();
    const auto paths = k_shortest_paths(n, 0, 2, 5);
    ASSERT_EQ(paths.size(), 2u);  // only two loop-free routes exist
    EXPECT_EQ(paths[0].switches, (std::vector<SwitchId>{0, 1, 2}));
    EXPECT_EQ(paths[1].switches, (std::vector<SwitchId>{0, 2}));
    EXPECT_LE(paths[0].latency_us, paths[1].latency_us);
}

TEST(Paths, KShortestOnGrid) {
    // 2x3 grid: many alternative routes; k=4 must yield 4 distinct loop-free
    // paths in ascending latency order.
    Network n;
    for (int i = 0; i < 6; ++i) n.add_switch(sw());
    // grid indices: 0 1 2 / 3 4 5
    n.add_link(0, 1, 1.0);
    n.add_link(1, 2, 1.0);
    n.add_link(3, 4, 1.0);
    n.add_link(4, 5, 1.0);
    n.add_link(0, 3, 1.0);
    n.add_link(1, 4, 1.0);
    n.add_link(2, 5, 1.0);
    const auto paths = k_shortest_paths(n, 0, 5, 4);
    ASSERT_EQ(paths.size(), 4u);
    for (std::size_t i = 1; i < paths.size(); ++i) {
        EXPECT_LE(paths[i - 1].latency_us, paths[i].latency_us);
        EXPECT_NE(paths[i - 1].switches, paths[i].switches);
    }
    for (const Path& p : paths) {
        EXPECT_DOUBLE_EQ(path_latency(n, p.switches), p.latency_us);
        // loop-free
        std::set<SwitchId> unique(p.switches.begin(), p.switches.end());
        EXPECT_EQ(unique.size(), p.switches.size());
    }
}

TEST(Paths, KZeroEmpty) {
    const Network n = triangle();
    EXPECT_TRUE(k_shortest_paths(n, 0, 2, 0).empty());
}

TEST(Paths, KShortestDisconnectedEmpty) {
    Network n;
    n.add_switch(sw());
    n.add_switch(sw());
    EXPECT_TRUE(k_shortest_paths(n, 0, 1, 3).empty());
}

}  // namespace
}  // namespace hermes::net
