// hermes_serve wire protocol tests: JSON round-trips, request parsing and
// error replies for malformed input, epoch batching semantics of
// ServeSession, spec resolution, and the serve.* metrics surface.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/serve.h"
#include "obs/obs.h"
#include "sim/testbed.h"
#include "util/json.h"

namespace hermes::core {
namespace {

net::Network testbed() {
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 8;
    return sim::make_testbed(config);
}

// Splits the accumulated session output back into response lines.
std::vector<std::string> lines_of(const std::string& out) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < out.size()) {
        const std::size_t end = out.find('\n', start);
        lines.push_back(out.substr(start, end - start));
        if (end == std::string::npos) break;
        start = end + 1;
    }
    return lines;
}

util::Json parsed(const std::string& line) {
    auto result = util::parse_json(line);
    EXPECT_TRUE(result.ok()) << line;
    return result.ok() ? std::move(result).value() : util::Json();
}

// ---- JSON / request round-trips ------------------------------------------

TEST(ServeProtocol, JsonDumpParseRoundTrip) {
    util::JsonObject object;
    object.emplace_back("id", util::Json(std::int64_t{42}));
    object.emplace_back("op", util::Json("add_program"));
    object.emplace_back("pi", util::Json(3.25));
    object.emplace_back("flag", util::Json(true));
    util::JsonArray items;
    items.emplace_back("a\n\"b\"");
    object.emplace_back("items", util::Json(std::move(items)));
    const util::Json original{std::move(object)};

    const util::Json reparsed = parsed(original.dump());
    EXPECT_EQ(reparsed.get("id").int_value(), 42);
    EXPECT_EQ(reparsed.get("op").string_value(), "add_program");
    EXPECT_DOUBLE_EQ(reparsed.get("pi").double_value(), 3.25);
    EXPECT_TRUE(reparsed.get("flag").bool_value());
    EXPECT_EQ(reparsed.get("items").array().at(0).string_value(), "a\n\"b\"");
}

TEST(ServeProtocol, ParseRequestRoundTripsEveryOp) {
    const auto add = parse_request(
        R"({"id": 1, "op": "add_program", "name": "t0", "spec": "synthetic:7:0"})");
    ASSERT_TRUE(add.ok());
    EXPECT_EQ(add.value().op, "add_program");
    EXPECT_EQ(add.value().name, "t0");
    EXPECT_EQ(add.value().spec, "synthetic:7:0");
    EXPECT_EQ(add.value().id.int_value(), 1);

    const auto remove =
        parse_request(R"({"id": "x", "op": "remove_program", "name": "t0"})");
    ASSERT_TRUE(remove.ok());
    EXPECT_EQ(remove.value().name, "t0");
    EXPECT_EQ(remove.value().id.string_value(), "x");

    const auto fault = parse_request(
        R"({"id": 2, "op": "inject_fault", "kind": "link-down", "a": 0, "b": 1})");
    ASSERT_TRUE(fault.ok());
    EXPECT_TRUE(fault.value().has_kind);
    EXPECT_EQ(fault.value().fault.kind, fault::FaultKind::kLinkDown);
    EXPECT_EQ(fault.value().fault.a, 0u);
    EXPECT_EQ(fault.value().fault.b, 1u);

    const auto recover = parse_request(R"({"op": "recover"})");
    ASSERT_TRUE(recover.ok());
    EXPECT_FALSE(recover.value().has_kind);  // bare recover = recover all
    EXPECT_TRUE(recover.value().id.is_null());

    for (const char* op : {"retarget_traffic", "query", "snapshot"}) {
        const auto r = parse_request(std::string(R"({"op": ")") + op + "\"}");
        ASSERT_TRUE(r.ok()) << op;
        EXPECT_EQ(r.value().op, op);
    }
}

TEST(ServeProtocol, ParseRequestRejectsMalformedInput) {
    // Each entry: (line, reason it must fail).
    const char* bad[] = {
        "not json at all",
        "{\"op\": 7}",                                        // op not a string
        R"({"op": "frobnicate"})",                            // unknown op
        R"({"op": "add_program", "name": "t0"})",             // missing spec
        R"({"op": "add_program", "spec": "synthetic:1"})",    // missing name
        R"({"op": "remove_program"})",                        // missing name
        R"({"op": "inject_fault", "kind": "nope", "a": 0})",  // bad kind
        R"({"op": "inject_fault", "kind": "link-up", "a": 0, "b": 1})",  // up on inject
        R"({"op": "recover", "kind": "link-down", "a": 0, "b": 1})",     // down on recover
        R"({"op": "inject_fault", "kind": "link-down", "a": 0})",        // missing b
        "[1, 2, 3]",                                          // not an object
    };
    for (const char* line : bad) {
        const auto r = parse_request(line);
        EXPECT_FALSE(r.ok()) << line;
        if (!r.ok()) {
            EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidInput) << line;
        }
    }
}

TEST(ServeProtocol, FormatOkAndErrorEchoTheId) {
    const std::string ok = format_ok(util::Json(std::int64_t{7}),
                                     util::Json(util::JsonObject{}));
    const util::Json ok_json = parsed(ok);
    EXPECT_EQ(ok_json.get("id").int_value(), 7);
    EXPECT_TRUE(ok_json.get("ok").bool_value());

    const std::string err =
        format_error(util::Json("abc"), util::Status::invalid("bad spec"));
    const util::Json err_json = parsed(err);
    EXPECT_EQ(err_json.get("id").string_value(), "abc");
    EXPECT_FALSE(err_json.get("ok").bool_value());
    EXPECT_EQ(err_json.get("error").get("code").string_value(), "invalid_input");
    EXPECT_EQ(err_json.get("error").get("message").string_value(), "bad spec");
}

TEST(ServeProtocol, ResolveProgramSpecGrammar) {
    EXPECT_TRUE(resolve_program_spec("synthetic:7").ok());
    EXPECT_TRUE(resolve_program_spec("synthetic:7:3").ok());
    EXPECT_TRUE(resolve_program_spec("sketch:countmin").ok());
    EXPECT_FALSE(resolve_program_spec("").ok());
    EXPECT_FALSE(resolve_program_spec("synthetic:notanumber").ok());
    EXPECT_FALSE(resolve_program_spec("real:no-such-program").ok());
    EXPECT_FALSE(resolve_program_spec("mystery:thing").ok());
}

// ---- Session semantics ---------------------------------------------------

TEST(ServeSession, MutationsStageUntilFlush) {
    Engine engine(testbed());
    ServeSession session(engine);
    std::string out;
    session.handle_line(
        R"({"id": 1, "op": "add_program", "name": "a", "spec": "synthetic:3:0"})",
        out);
    session.handle_line(
        R"({"id": 2, "op": "add_program", "name": "b", "spec": "synthetic:3:1"})",
        out);
    EXPECT_TRUE(out.empty());  // staged, not applied
    EXPECT_EQ(session.pending(), 2u);
    EXPECT_EQ(engine.epoch(), 0);

    session.flush(out);
    EXPECT_EQ(session.pending(), 0u);
    EXPECT_EQ(engine.epoch(), 1);  // one epoch for the whole batch
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 2u);
    for (const auto& line : lines) {
        const util::Json response = parsed(line);
        EXPECT_TRUE(response.get("ok").bool_value()) << line;
        EXPECT_EQ(response.get("result").get("batched").int_value(), 2);
        EXPECT_EQ(response.get("result").get("epoch").int_value(), 1);
    }
}

TEST(ServeSession, QueryFlushesStagedMutationsFirst) {
    Engine engine(testbed());
    ServeSession session(engine);
    std::string out;
    session.handle_line(
        R"({"id": 1, "op": "add_program", "name": "a", "spec": "synthetic:3:0"})",
        out);
    session.handle_line(R"({"id": 2, "op": "query"})", out);

    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 2u);  // mutation response, then the query's
    const util::Json mutation = parsed(lines[0]);
    EXPECT_EQ(mutation.get("id").int_value(), 1);
    const util::Json query = parsed(lines[1]);
    EXPECT_EQ(query.get("id").int_value(), 2);
    // The query sees its own session's write.
    const auto& programs = query.get("result").get("programs").array();
    ASSERT_EQ(programs.size(), 1u);
    EXPECT_EQ(programs[0].string_value(), "a");
    EXPECT_TRUE(query.get("result").get("incumbent").bool_value());
}

TEST(ServeSession, MalformedLineGetsErrorReplyAndFlushes) {
    obs::Sink sink;
    Engine engine(testbed());
    ServeSession session(engine, ServeOptions{nullptr, &sink});
    std::string out;
    session.handle_line(
        R"({"id": 1, "op": "add_program", "name": "a", "spec": "synthetic:3:0"})",
        out);
    session.handle_line("this is not json", out);

    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 2u);  // staged mutation flushed, then the error
    EXPECT_TRUE(parsed(lines[0]).get("ok").bool_value());
    const util::Json error = parsed(lines[1]);
    EXPECT_FALSE(error.get("ok").bool_value());
    EXPECT_TRUE(error.get("id").is_null());
    EXPECT_EQ(error.get("error").get("code").string_value(), "invalid_input");
    EXPECT_EQ(sink.counter("serve.malformed").value(), 1);
    EXPECT_EQ(sink.counter("serve.requests").value(), 2);
}

TEST(ServeSession, UnresolvableSpecAnswersImmediatelyWithoutPoisoningBatch) {
    Engine engine(testbed());
    ServeSession session(engine);
    std::string out;
    session.handle_line(
        R"({"id": 1, "op": "add_program", "name": "a", "spec": "synthetic:3:0"})",
        out);
    session.handle_line(
        R"({"id": 2, "op": "add_program", "name": "bad", "spec": "mystery:x"})",
        out);
    // The bad spec answered immediately; the good mutation is still staged.
    const auto immediate = lines_of(out);
    ASSERT_EQ(immediate.size(), 1u);
    EXPECT_FALSE(parsed(immediate[0]).get("ok").bool_value());
    EXPECT_EQ(session.pending(), 1u);

    out.clear();
    session.flush(out);
    const auto flushed = lines_of(out);
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_TRUE(parsed(flushed[0]).get("ok").bool_value());
    EXPECT_EQ(engine.program_count(), 1u);
}

TEST(ServeSession, FailedEpochAnswersEveryBatchMemberWithSameError) {
    // Two adds with the same tenant name in one epoch: kInvalidInput for the
    // whole batch, and both requests hear about it.
    Engine engine(testbed());
    ServeSession session(engine);
    std::string out;
    session.handle_line(
        R"({"id": 1, "op": "add_program", "name": "dup", "spec": "synthetic:3:0"})",
        out);
    session.handle_line(
        R"({"id": 2, "op": "add_program", "name": "dup", "spec": "synthetic:3:1"})",
        out);
    session.flush(out);

    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 2u);
    for (const auto& line : lines) {
        const util::Json response = parsed(line);
        EXPECT_FALSE(response.get("ok").bool_value()) << line;
        EXPECT_EQ(response.get("error").get("code").string_value(),
                  "invalid_input");
    }
    EXPECT_EQ(engine.program_count(), 0u);
}

TEST(ServeSession, SnapshotListsPlacementsAndRoutes) {
    Engine engine(testbed());
    ServeSession session(engine);
    std::string out;
    session.handle_line(
        R"({"id": 1, "op": "add_program", "name": "a", "spec": "synthetic:5:0"})",
        out);
    out.clear();
    session.handle_line(R"({"id": 2, "op": "snapshot"})", out);

    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 2u);  // flushed mutation + snapshot
    const util::Json snapshot = parsed(lines[1]);
    ASSERT_TRUE(snapshot.get("ok").bool_value());
    const util::Json& result = snapshot.get("result");
    EXPECT_TRUE(result.get("incumbent").bool_value());
    const auto& placements = result.get("placements").array();
    ASSERT_FALSE(placements.empty());
    EXPECT_TRUE(placements[0].has("node"));
    EXPECT_TRUE(placements[0].has("switch"));
    EXPECT_TRUE(placements[0].has("stage"));
}

TEST(ServeSession, BareRecoverHealsInjectedFault) {
    obs::Sink sink;
    EngineOptions engine_options;
    engine_options.sink = &sink;
    Engine engine(testbed(), engine_options);
    ServeSession session(engine, ServeOptions{nullptr, &sink});
    std::string out;
    session.handle_line(
        R"({"id": 1, "op": "add_program", "name": "a", "spec": "synthetic:3:0"})",
        out);
    session.flush(out);
    const std::size_t live_before = engine.network().live_link_count();

    out.clear();
    session.handle_line(
        R"({"id": 2, "op": "inject_fault", "kind": "link-down", "a": 0, "b": 1})",
        out);
    session.flush(out);
    ASSERT_EQ(engine.network().live_link_count(), live_before - 1);

    out.clear();
    session.handle_line(R"({"id": 3, "op": "recover"})", out);
    session.flush(out);
    EXPECT_EQ(engine.network().live_link_count(), live_before);
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(parsed(lines[0]).get("ok").bool_value());
    EXPECT_EQ(sink.counter("verify.violations").value(), 0);
}

TEST(ServeSession, LatencyHistogramRecordsEveryRequest) {
    obs::Sink sink;
    Engine engine(testbed());
    ServeSession session(engine, ServeOptions{nullptr, &sink});
    std::string out;
    session.handle_line(R"({"id": 1, "op": "query"})", out);
    session.handle_line(R"({"id": 2, "op": "query"})", out);
    // The session registered the histogram already; the bounds argument is
    // only used on first registration.
    const obs::Histogram& h =
        sink.histogram("serve.request_us", obs::geometric_bounds(1.0, 2.0, 24));
    std::int64_t total = 0;
    for (const std::int64_t c : h.counts()) total += c;
    EXPECT_EQ(total, 2);
    EXPECT_GE(h.quantile(0.99), h.quantile(0.50));
}

// ---- Overload protection --------------------------------------------------

std::int64_t counter_of(const obs::Sink& sink, std::string_view name) {
    for (const auto& c : sink.counters()) {
        if (c.name == name) return c.value;
    }
    return 0;
}

TEST(ServeSession, OversizedRequestGetsRetryableRejection) {
    obs::Sink sink;
    Engine engine(testbed());
    ServeOptions options;
    options.sink = &sink;
    options.max_request_bytes = 64;
    ServeSession session(engine, options);
    std::string out;

    // A line over the cap that still reached handle_line (stdio/TCP loops
    // normally reject while assembling; this is the belt-and-braces path).
    std::string line = R"({"id": 7, "op": "query", "pad": ")";
    line.append(100, 'x');
    line += "\"}";
    session.handle_line(line, out);
    auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u);
    util::Json response = parsed(lines[0]);
    EXPECT_FALSE(response.get("ok").bool_value());
    EXPECT_EQ(response.get("error").get("code").string_value(), "resource_exhausted");
    EXPECT_TRUE(response.get("error").get("retryable").bool_value());
    EXPECT_EQ(counter_of(sink, "serve.oversized"), 1);

    // The transport-level rejection for a line never assembled at all.
    out.clear();
    session.reject_oversized(5000, out);
    lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u);
    response = parsed(lines[0]);
    EXPECT_FALSE(response.get("ok").bool_value());
    EXPECT_TRUE(response.get("id").is_null());
    EXPECT_EQ(response.get("error").get("code").string_value(), "resource_exhausted");
    EXPECT_TRUE(response.get("error").get("retryable").bool_value());
    EXPECT_EQ(counter_of(sink, "serve.oversized"), 2);

    // The session still works after rejections.
    out.clear();
    session.handle_line(R"({"id": 8, "op": "query"})", out);
    EXPECT_TRUE(parsed(lines_of(out)[0]).get("ok").bool_value());
}

TEST(ServeSession, MutationsPastEpochOpCapAreShed) {
    obs::Sink sink;
    Engine engine(testbed());
    ServeOptions options;
    options.sink = &sink;
    options.max_epoch_ops = 2;
    ServeSession session(engine, options);
    std::string out;
    session.handle_line(
        R"({"id": 1, "op": "add_program", "name": "a", "spec": "synthetic:3:0"})",
        out);
    session.handle_line(
        R"({"id": 2, "op": "add_program", "name": "b", "spec": "synthetic:3:1"})",
        out);
    EXPECT_TRUE(out.empty());
    // Third mutation of the epoch: shed immediately with a retryable error,
    // not staged.
    session.handle_line(
        R"({"id": 3, "op": "add_program", "name": "c", "spec": "synthetic:3:2"})",
        out);
    auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u);
    const util::Json shed = parsed(lines[0]);
    EXPECT_EQ(shed.get("id").int_value(), 3);
    EXPECT_FALSE(shed.get("ok").bool_value());
    EXPECT_EQ(shed.get("error").get("code").string_value(), "resource_exhausted");
    EXPECT_TRUE(shed.get("error").get("retryable").bool_value());
    EXPECT_EQ(session.pending(), 2u);
    EXPECT_EQ(counter_of(sink, "serve.shed"), 1);

    // The flush drains the queue; the next epoch accepts mutations again.
    out.clear();
    session.flush(out);
    EXPECT_EQ(engine.epoch(), 1);
    out.clear();
    session.handle_line(
        R"({"id": 4, "op": "add_program", "name": "c", "spec": "synthetic:3:2"})",
        out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(session.pending(), 1u);
}

TEST(ServeSession, DeltaOutcomeJsonCarriesDegradedFlag) {
    DeltaOutcome outcome;
    outcome.status = "degraded";
    outcome.degraded = true;
    outcome.delta = true;
    outcome.epoch = 9;
    const util::Json j = delta_outcome_json(outcome, 1);
    EXPECT_TRUE(j.get("degraded").bool_value());
    EXPECT_EQ(j.get("status").string_value(), "degraded");
}

}  // namespace
}  // namespace hermes::core
