// Linearization helper tests: each gadget is solved through the MILP solver
// and checked against the boolean/semantic truth table.
#include <gtest/gtest.h>

#include "milp/lin.h"
#include "milp/solver.h"

namespace hermes::milp {
namespace {

double solve_value(Model m, LinExpr objective, bool maximize_objective, VarId watch) {
    if (maximize_objective) m.maximize(std::move(objective));
    else m.minimize(std::move(objective));
    const MilpResult r = solve_milp(m);
    EXPECT_EQ(r.status, MilpStatus::kOptimal);
    return r.values[static_cast<std::size_t>(watch)];
}

TEST(Lin, AndTruthTable) {
    for (const bool xv : {false, true}) {
        for (const bool yv : {false, true}) {
            Model m;
            const VarId x = m.add_binary("x");
            const VarId y = m.add_binary("y");
            const VarId z = add_and(m, x, y);
            m.add_constraint(LinExpr::term(x), Sense::kEq, xv ? 1.0 : 0.0);
            m.add_constraint(LinExpr::term(y), Sense::kEq, yv ? 1.0 : 0.0);
            // Probe both directions so the constraints, not the objective,
            // pin z.
            const double zmax = solve_value(m, LinExpr::term(z), true, z);
            const double zmin = solve_value(m, LinExpr::term(z), false, z);
            EXPECT_DOUBLE_EQ(zmax, (xv && yv) ? 1.0 : 0.0);
            EXPECT_DOUBLE_EQ(zmin, (xv && yv) ? 1.0 : 0.0);
        }
    }
}

TEST(Lin, AndRequiresBinaries) {
    Model m;
    const VarId x = m.add_binary("x");
    const VarId c = m.add_continuous(0.0, 1.0, "c");
    EXPECT_THROW((void)add_and(m, x, c), std::invalid_argument);
}

TEST(Lin, OrTruthTable) {
    for (int mask = 0; mask < 8; ++mask) {
        Model m;
        std::vector<VarId> xs;
        for (int i = 0; i < 3; ++i) {
            xs.push_back(m.add_binary());
            m.add_constraint(LinExpr::term(xs.back()), Sense::kEq,
                             (mask & (1 << i)) ? 1.0 : 0.0);
        }
        const VarId z = add_or(m, xs);
        const double zmax = solve_value(m, LinExpr::term(z), true, z);
        const double zmin = solve_value(m, LinExpr::term(z), false, z);
        const double expected = mask != 0 ? 1.0 : 0.0;
        EXPECT_DOUBLE_EQ(zmax, expected) << mask;
        EXPECT_DOUBLE_EQ(zmin, expected) << mask;
    }
}

TEST(Lin, OrEmptyRejected) {
    Model m;
    EXPECT_THROW((void)add_or(m, {}), std::invalid_argument);
}

TEST(Lin, MaxBoundYieldsMaximum) {
    Model m;
    const VarId a = m.add_continuous(3.0, 3.0, "a");
    const VarId b = m.add_continuous(7.0, 7.0, "b");
    const std::vector<LinExpr> exprs{LinExpr::term(a), LinExpr::term(b),
                                     LinExpr::term(a) + LinExpr::term(b, 0.5)};
    const VarId t = add_max_bound(m, exprs);
    m.minimize(LinExpr::term(t));
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 7.0, 1e-6);
}

TEST(Lin, MaxBoundEmptyRejected) {
    Model m;
    EXPECT_THROW((void)add_max_bound(m, {}), std::invalid_argument);
}

TEST(Lin, IndicatorLeEnforcedOnlyWhenOn) {
    for (const bool on : {false, true}) {
        Model m;
        const VarId z = m.add_binary("z");
        const VarId x = m.add_continuous(0.0, 10.0, "x");
        add_indicator(m, z, LinExpr::term(x), Sense::kLe, 4.0, 10.0);
        m.add_constraint(LinExpr::term(z), Sense::kEq, on ? 1.0 : 0.0);
        m.maximize(LinExpr::term(x));
        const MilpResult r = solve_milp(m);
        ASSERT_EQ(r.status, MilpStatus::kOptimal);
        EXPECT_NEAR(r.objective, on ? 4.0 : 10.0, 1e-6);
    }
}

TEST(Lin, IndicatorGeEnforcedOnlyWhenOn) {
    for (const bool on : {false, true}) {
        Model m;
        const VarId z = m.add_binary("z");
        const VarId x = m.add_continuous(0.0, 10.0, "x");
        add_indicator(m, z, LinExpr::term(x), Sense::kGe, 6.0, 10.0);
        m.add_constraint(LinExpr::term(z), Sense::kEq, on ? 1.0 : 0.0);
        m.minimize(LinExpr::term(x));
        const MilpResult r = solve_milp(m);
        ASSERT_EQ(r.status, MilpStatus::kOptimal);
        EXPECT_NEAR(r.objective, on ? 6.0 : 0.0, 1e-6);
    }
}

TEST(Lin, IndicatorEqCombinesBoth) {
    Model m;
    const VarId z = m.add_binary("z");
    const VarId x = m.add_continuous(0.0, 10.0, "x");
    add_indicator(m, z, LinExpr::term(x), Sense::kEq, 5.0, 10.0, "pin");
    m.add_constraint(LinExpr::term(z), Sense::kEq, 1.0);
    m.maximize(LinExpr::term(x));
    const MilpResult r = solve_milp(m);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.objective, 5.0, 1e-6);
}

TEST(Lin, IndicatorNegativeBigMRejected) {
    Model m;
    const VarId z = m.add_binary("z");
    EXPECT_THROW(add_indicator(m, z, LinExpr{0.0}, Sense::kLe, 0.0, -1.0),
                 std::invalid_argument);
}

TEST(Lin, BoxBigMCoversRange) {
    Model m;
    const VarId x = m.add_continuous(-2.0, 3.0, "x");
    const VarId y = m.add_continuous(0.0, 4.0, "y");
    const LinExpr e = LinExpr::term(x, 2.0) - LinExpr::term(y) + LinExpr{1.0};
    // Range of e: [2*-2-4+1, 2*3-0+1] = [-7, 7]; vs rhs 1 -> max |.| = 8.
    EXPECT_DOUBLE_EQ(box_big_m(m, e, 1.0), 8.0);
}

TEST(Lin, BoxBigMRejectsUnbounded) {
    Model m;
    const VarId x = m.add_continuous(0.0, kInfinity, "x");
    EXPECT_THROW((void)box_big_m(m, LinExpr::term(x), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace hermes::milp
