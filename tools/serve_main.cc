#include "serve_main.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <iostream>
#include <optional>
#include <set>

#include "cli_common.h"
#include "core/engine.h"
#include "core/serve.h"
#include "util/rng.h"
#include "util/strings.h"

namespace hermes::cli {

namespace {

struct ServeFlags {
    std::string topology;
    double eps1 = std::numeric_limits<double>::infinity();
    std::int64_t eps2 = std::numeric_limits<std::int64_t>::max();
    int threads = 1;
    std::uint64_t seed = 1;
    double epoch_deadline = 0.0;
    double time_limit = 30.0;  // MILP escalation budget
    bool allow_milp = false;
    int listen_port = -1;       // -1 = stdio mode
    int max_connections = 0;    // 0 = accept until killed
    std::string emit_churn;     // "<events>[:seed]"; empty = serve
    // Durability (empty journal = no persistence; see core/journal.h).
    std::string journal;
    core::Durability durability = core::Durability::kBatch;
    std::int64_t snapshot_interval = 64;
    // Overload protection (0 disables a cap).
    std::size_t max_request_bytes = 1u << 20;
    std::size_t max_epoch_ops = 1024;
    ExportOptions exports;
};

int flag_error(const util::Status& status) {
    std::cerr << "error: " << status.to_string() << "\n";
    return 2;
}

util::StatusOr<ServeFlags> parse_serve_flags(const std::vector<std::string>& args) {
    ServeFlags flags;
    FlagParser parser(args);
    auto value = [&]() { return parser.value(); };
    while (parser.next()) {
        const std::string& flag = parser.flag();
        util::StatusOr<std::string> v = std::string{};
        if (flag == "--allow-milp") {
            if (parser.has_inline_value()) {
                return util::Status::invalid("--allow-milp takes no value");
            }
            flags.allow_milp = true;
            continue;
        }
        v = value();
        if (!v.ok()) return v.status();
        try {
            if (flag == "--topology") {
                flags.topology = v.value();
            } else if (flag == "--eps1") {
                flags.eps1 = util::parse_double(v.value());
            } else if (flag == "--eps2") {
                flags.eps2 = util::parse_int(v.value());
            } else if (flag == "--threads") {
                flags.threads = static_cast<int>(util::parse_int(v.value()));
            } else if (flag == "--seed") {
                flags.seed = static_cast<std::uint64_t>(util::parse_int(v.value()));
            } else if (flag == "--epoch-deadline" || flag == "--repair-deadline") {
                // --repair-deadline is the paper-facing spelling: the budget
                // after which an epoch degrades to the verified incumbent.
                flags.epoch_deadline = util::parse_double(v.value());
            } else if (flag == "--journal") {
                flags.journal = v.value();
            } else if (flag == "--durability") {
                const std::optional<core::Durability> d =
                    core::parse_durability(v.value());
                if (!d.has_value()) {
                    return util::Status::invalid(
                        "--durability takes none|batch|epoch, got '" + v.value() + "'");
                }
                flags.durability = *d;
            } else if (flag == "--snapshot-interval") {
                flags.snapshot_interval = util::parse_int(v.value());
            } else if (flag == "--max-request-bytes") {
                flags.max_request_bytes =
                    static_cast<std::size_t>(util::parse_int(v.value()));
            } else if (flag == "--max-epoch-ops") {
                flags.max_epoch_ops =
                    static_cast<std::size_t>(util::parse_int(v.value()));
            } else if (flag == "--time-limit") {
                flags.time_limit = util::parse_double(v.value());
            } else if (flag == "--listen") {
                flags.listen_port = static_cast<int>(util::parse_int(v.value()));
            } else if (flag == "--max-connections") {
                flags.max_connections = static_cast<int>(util::parse_int(v.value()));
            } else if (flag == "--emit-churn") {
                flags.emit_churn = v.value();
            } else if (flag == "--trace-out") {
                flags.exports.trace_out = v.value();
            } else if (flag == "--metrics-out") {
                flags.exports.metrics_out = v.value();
            } else {
                return util::Status::invalid("unknown option '" + flag + "'");
            }
        } catch (const std::invalid_argument& ex) {
            return util::Status::invalid(ex.what());
        }
    }
    if (flags.topology.empty()) {
        return util::Status::invalid("--topology is required (serve)");
    }
    return flags;
}

// True when removing link (a, b) disconnects the live component containing
// a: BFS from a over live adjacency, pretending the link is down.
bool is_bridge(net::Network& net, net::SwitchId a, net::SwitchId b) {
    if (!net.fail_link(a, b)) return true;  // unknown/already down: leave it be
    std::vector<bool> seen(net.switch_count(), false);
    std::deque<net::SwitchId> queue{a};
    seen[a] = true;
    bool found = false;
    while (!queue.empty() && !found) {
        const net::SwitchId u = queue.front();
        queue.pop_front();
        for (const net::SwitchId w : net.neighbors(u)) {
            if (seen[w]) continue;
            seen[w] = true;
            if (w == b) found = true;
            queue.push_back(w);
        }
    }
    net.recover_link(a, b);
    return !found;
}

// Deterministic churn-script generator: prints one JSON request per line.
// The script is conservative by construction — link failures only, one open
// failure at a time, never a bridge — so every epoch of a replay stays
// verifier-clean (the point of the CI smoke job that pipes this back in).
int emit_churn(const ServeFlags& flags, net::Network network) {
    const auto parts = util::split(flags.emit_churn, ':');
    std::size_t events = 0;
    std::uint64_t seed = flags.seed;
    try {
        events = static_cast<std::size_t>(util::parse_int(parts.empty() ? "" : parts[0]));
        if (parts.size() > 1) {
            seed = static_cast<std::uint64_t>(util::parse_int(parts[1]));
        }
    } catch (const std::invalid_argument&) {
        return flag_error(util::Status::invalid("--emit-churn <events>[:seed]"));
    }

    util::SplitMix64 rng(seed);
    std::vector<std::string> installed;
    std::optional<std::pair<net::SwitchId, net::SwitchId>> open_failure;
    constexpr std::size_t kMaxTenants = 10;
    std::int64_t next_tenant = 0;
    std::int64_t id = 0;

    auto emit = [&](util::Json request) {
        request.set("id", ++id);
        std::cout << request.dump() << "\n";
    };
    auto add_tenant = [&] {
        util::Json r{util::JsonObject{}};
        const std::string name = "t" + std::to_string(next_tenant);
        r.set("op", "add_program");
        r.set("name", name);
        r.set("spec", "synthetic:" + std::to_string(seed) + ":" +
                          std::to_string(next_tenant));
        ++next_tenant;
        installed.push_back(name);
        emit(std::move(r));
    };
    auto remove_tenant = [&] {
        const std::size_t pick = rng() % installed.size();
        util::Json r{util::JsonObject{}};
        r.set("op", "remove_program");
        r.set("name", installed[pick]);
        installed.erase(installed.begin() + static_cast<std::ptrdiff_t>(pick));
        emit(std::move(r));
    };
    auto recover_failure = [&] {
        util::Json r{util::JsonObject{}};
        r.set("op", "recover");
        r.set("kind", "link-up");
        r.set("a", open_failure->first);
        r.set("b", open_failure->second);
        open_failure.reset();
        emit(std::move(r));
    };

    // Seed the session with a couple of tenants so early faults have a
    // deployment to disturb.
    add_tenant();
    add_tenant();
    for (std::size_t i = 2; i < events; ++i) {
        const std::uint64_t roll = rng() % 100;
        if (roll < 45) {
            if (installed.size() < kMaxTenants) {
                add_tenant();
            } else {
                remove_tenant();
            }
        } else if (roll < 65) {
            if (installed.size() > 1) {
                remove_tenant();
            } else {
                add_tenant();
            }
        } else if (roll < 75) {
            if (open_failure.has_value()) {
                recover_failure();
                continue;
            }
            // Pick a random non-bridge live link; skip the event if the
            // sampled candidates are all bridges.
            const auto& links = network.links();
            bool placed = false;
            for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
                const net::Link& link = links[rng() % links.size()];
                if (!network.link_up(link.a, link.b) ||
                    is_bridge(network, link.a, link.b)) {
                    continue;
                }
                (void)network.fail_link(link.a, link.b);
                open_failure = {link.a, link.b};
                util::Json r{util::JsonObject{}};
                r.set("op", "inject_fault");
                r.set("kind", "link-down");
                r.set("a", link.a);
                r.set("b", link.b);
                emit(std::move(r));
                placed = true;
            }
            if (!placed) {
                util::Json r{util::JsonObject{}};
                r.set("op", "query");
                emit(std::move(r));
            }
        } else if (roll < 85) {
            if (open_failure.has_value()) {
                (void)network.recover_link(open_failure->first, open_failure->second);
                recover_failure();
            } else {
                util::Json r{util::JsonObject{}};
                r.set("op", "retarget_traffic");
                emit(std::move(r));
            }
        } else if (roll < 93) {
            util::Json r{util::JsonObject{}};
            r.set("op", "retarget_traffic");
            emit(std::move(r));
        } else {
            util::Json r{util::JsonObject{}};
            r.set("op", "query");
            emit(std::move(r));
        }
    }
    if (open_failure.has_value()) {
        (void)network.recover_link(open_failure->first, open_failure->second);
        recover_failure();
    }
    util::Json final_query{util::JsonObject{}};
    final_query.set("op", "query");
    emit(std::move(final_query));
    return 0;
}

// Assembles '\n'-terminated request lines from a byte stream while
// enforcing the request byte cap: a line that exceeds the cap before its
// terminator arrives stops being buffered — the rest of it is counted and
// discarded, and exactly one oversized rejection is emitted once the
// terminator (or EOF) shows up. This is the fix for the historical
// unbounded std::getline: an abusive or broken client streaming a gigabyte
// without a newline no longer grows daemon memory past the cap.
class LineAssembler {
public:
    LineAssembler(core::ServeSession& session, std::size_t max_bytes)
        : session_(session), max_bytes_(max_bytes) {}

    void feed(std::string_view data, std::string& out) {
        while (!data.empty()) {
            const std::size_t nl = data.find('\n');
            const std::string_view chunk =
                data.substr(0, nl == std::string_view::npos ? data.size() : nl);
            if (dropped_ > 0 ||
                (max_bytes_ > 0 && line_.size() + chunk.size() > max_bytes_)) {
                dropped_ += chunk.size();
            } else {
                line_.append(chunk);
            }
            if (nl == std::string_view::npos) return;  // terminator not here yet
            dispatch(out);
            data.remove_prefix(nl + 1);
        }
    }

    // EOF: handle a final unterminated line, if any.
    void finish(std::string& out) {
        if (dropped_ > 0 || !line_.empty()) dispatch(out);
    }

private:
    void dispatch(std::string& out) {
        if (dropped_ > 0) {
            session_.reject_oversized(line_.size() + dropped_, out);
        } else {
            session_.handle_line(line_, out);
        }
        line_.clear();
        dropped_ = 0;
    }

    core::ServeSession& session_;
    std::size_t max_bytes_;
    std::string line_;
    std::size_t dropped_ = 0;  // bytes of the current oversized line discarded
};

void stdio_loop(core::ServeSession& session) {
    LineAssembler assembler(session, session.options().max_request_bytes);
    std::string out;
    char chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (n == 0) break;
        assembler.feed(std::string_view(chunk, static_cast<std::size_t>(n)), out);
        // Flush the staged epoch at the read boundary — a burst of pipelined
        // requests arrives in one read and coalesces into one epoch, a lone
        // interactive request answers immediately.
        session.flush(out);
        if (!out.empty()) {
            std::cout << out;
            std::cout.flush();
            out.clear();
        }
    }
    assembler.finish(out);
    session.flush(out);
    if (!out.empty()) {
        std::cout << out;
        std::cout.flush();
    }
}

int tcp_loop(core::Engine& engine, const core::ServeOptions& serve_options,
             const ServeFlags& flags) {
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        std::cerr << "error: socket: " << std::strerror(errno) << "\n";
        return 1;
    }
    const int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(flags.listen_port));
    if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(listener, 8) < 0) {
        std::cerr << "error: bind/listen 127.0.0.1:" << flags.listen_port << ": "
                  << std::strerror(errno) << "\n";
        ::close(listener);
        return 1;
    }
    socklen_t addr_len = sizeof(addr);
    ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    std::cerr << "hermes_serve: listening on 127.0.0.1:" << ntohs(addr.sin_port)
              << "\n";

    int served = 0;
    while (flags.max_connections == 0 || served < flags.max_connections) {
        const int conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0) break;
        // One session per connection: staged epochs are per-client, the
        // engine (and its incumbent) is shared across connections.
        core::ServeSession session(engine, serve_options);
        LineAssembler assembler(session, serve_options.max_request_bytes);
        std::string out;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
            if (n <= 0) break;
            assembler.feed(std::string_view(chunk, static_cast<std::size_t>(n)), out);
            // Everything received so far is handled: this recv boundary is
            // the epoch boundary.
            session.flush(out);
            std::size_t sent = 0;
            while (sent < out.size()) {
                const ssize_t w = ::send(conn, out.data() + sent, out.size() - sent, 0);
                if (w <= 0) break;
                sent += static_cast<std::size_t>(w);
            }
            out.clear();
        }
        assembler.finish(out);
        session.flush(out);
        if (!out.empty()) {
            (void)::send(conn, out.data(), out.size(), 0);
        }
        ::close(conn);
        ++served;
    }
    ::close(listener);
    return 0;
}

}  // namespace

int run_serve(const std::vector<std::string>& args) {
    util::StatusOr<ServeFlags> parsed = parse_serve_flags(args);
    if (!parsed.ok()) return flag_error(parsed.status());
    const ServeFlags& flags = parsed.value();

    util::StatusOr<net::Network> network = parse_topology_spec(flags.topology);
    if (!network.ok()) return flag_error(network.status());

    if (!flags.emit_churn.empty()) {
        return emit_churn(flags, std::move(network).value());
    }

    std::optional<obs::Sink> sink_storage;
    obs::Sink* const sink = make_sink(flags.exports, sink_storage);

    core::EngineOptions engine_options;
    engine_options.threads = flags.threads;
    engine_options.seed = flags.seed;
    engine_options.sink = sink;
    engine_options.epsilon1 = flags.eps1;
    engine_options.epsilon2 = flags.eps2;
    engine_options.epoch_deadline_seconds = flags.epoch_deadline;
    engine_options.allow_milp = flags.allow_milp;
    engine_options.milp.time_limit_seconds = flags.time_limit;
    engine_options.milp.threads = flags.threads;
    core::Engine engine(std::move(network).value(), engine_options);

    if (!flags.journal.empty()) {
        core::JournalOptions journal_options;
        journal_options.durability = flags.durability;
        journal_options.snapshot_interval = flags.snapshot_interval;
        journal_options.sink = sink;
        util::StatusOr<core::Engine::RecoveryReport> recovered =
            engine.recover(flags.journal, journal_options);
        if (!recovered.ok()) return flag_error(recovered.status());
        const core::Engine::RecoveryReport& report = recovered.value();
        if (report.journal_found) {
            std::cerr << "hermes_serve: recovered journal " << flags.journal
                      << " (snapshot epoch " << report.snapshot_epoch << ", replayed "
                      << report.replayed_epochs << " epochs, " << report.failed_replays
                      << " failed, " << report.truncated_bytes
                      << " torn bytes dropped) at epoch " << report.epoch << "\n";
        }
    }

    core::ServeOptions serve_options;
    serve_options.sink = sink;
    serve_options.max_request_bytes = flags.max_request_bytes;
    serve_options.max_epoch_ops = flags.max_epoch_ops;
    serve_options.resolver = [](std::string_view spec) {
        return parse_serve_program_spec(std::string(spec));
    };

    int rc = 0;
    if (flags.listen_port >= 0) {
        rc = tcp_loop(engine, serve_options, flags);
    } else {
        core::ServeSession session(engine, serve_options);
        stdio_loop(session);
    }
    if (sink != nullptr) {
        const util::Status status = write_exports(*sink, flags.exports);
        if (!status.ok()) {
            std::cerr << "error: " << status.to_string() << "\n";
            return 1;
        }
    }
    return rc;
}

}  // namespace hermes::cli
