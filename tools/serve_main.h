// The hermes_serve daemon loop, shared by the hermes_serve binary and the
// `hermes_cli serve` subcommand (both parse the same flags through
// cli::FlagParser). See tools/hermes_serve.cpp for the flag reference and
// core/serve.h for the wire protocol.
#pragma once

#include <string>
#include <vector>

namespace hermes::cli {

// Runs the daemon (or the --emit-churn generator) to completion. Returns the
// process exit code: 0 on a clean run, 1 on runtime errors, 2 on flag
// errors (after printing "error: ..." to stderr).
int run_serve(const std::vector<std::string>& args);

}  // namespace hermes::cli
