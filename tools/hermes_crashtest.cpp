// hermes_crashtest — crash-injection harness for the journaled engine
// (DESIGN.md §5k).
//
// For every compiled-in crash point (fault::crash_point_names), the harness
// forks a child that arms the point, runs a deterministic churn of tenant
// add/remove, retargets, and fault events against a journaled core::Engine,
// and gets SIGKILLed mid-flight at the armed seam. A second child then
// recovers from the journal, finishes the remaining churn, and the parent
// asserts the recovered engine's fingerprint is BIT-IDENTICAL to an
// uninterrupted baseline run of the same churn — the whole crash-safety
// contract in one executable.
//
//   hermes_crashtest [--topology <spec>] [--events <n>] [--seed <n>]
//                    [--journal <path>] [--durability none|batch|epoch]
//                    [--snapshot-interval <n>] [--point <name>]...
//                    [--metrics-out <file>] [--verbose]
//
// --point restricts the sweep to the named crash points (repeatable);
// default sweeps all of them. Each point is crashed at its first hit and
// then at two deeper hit counts (~1/3 and ~2/3 through the churn) when the
// point fires that often — rotation seams only fire once per
// snapshot-interval epochs, so deeper arms that never trip simply end the
// run uncrashed and are skipped.
//
// Exit status 0 iff every injected crash recovered to the baseline
// fingerprint, no verifier violations were recorded, and every swept crash
// point fired at least once. --metrics-out writes the aggregate in the
// standard obs JSON shape:
//
//   crash.injected / crash.recovered / crash.fingerprint_mismatches /
//   crash.points_unreached / serve.recoveries / verify.violations
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.h"
#include "core/engine.h"
#include "core/journal.h"
#include "fault/crash.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "prog/synthetic.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using hermes::core::Engine;

struct Flags {
    std::string topology = "testbed:4:8";
    int events = 100;
    std::uint64_t seed = 1;
    std::string journal = "crashtest.journal";
    hermes::core::Durability durability = hermes::core::Durability::kBatch;
    std::int64_t snapshot_interval = 16;
    std::vector<std::string> points;  // empty = all
    std::string metrics_out;
    bool verbose = false;
};

int usage() {
    std::cerr << "usage: hermes_crashtest [--topology <spec>] [--events <n>]\n"
                 "           [--seed <n>] [--journal <path>]\n"
                 "           [--durability none|batch|epoch] [--snapshot-interval <n>]\n"
                 "           [--point <name>]... [--metrics-out <file>] [--verbose]\n";
    return 2;
}

// The deterministic churn: one Engine::Mutation per epoch, valid by
// construction against the generator's OWN tracked state (tenant set, downed
// links/switches) — never against the engine's — so regenerating the list in
// a recovery child and resuming at any epoch index replays identically.
// Infeasible epochs are allowed (they journal and re-fail deterministically);
// kInvalidInput epochs are not possible.
std::vector<Engine::Mutation> make_churn(const hermes::net::Network& network,
                                         int events, std::uint64_t seed) {
    hermes::util::SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    hermes::prog::SyntheticConfig config;
    std::vector<std::string> tenants;
    std::vector<std::size_t> down_links;  // indices into network.links()
    std::vector<hermes::net::SwitchId> down_switches;
    int next_tenant = 0;
    constexpr std::size_t kMaxTenants = 5;
    constexpr std::size_t kMaxDownLinks = 3;
    constexpr std::size_t kMaxDownSwitches = 1;

    std::vector<Engine::Mutation> ops;
    ops.reserve(static_cast<std::size_t>(events));
    while (ops.size() < static_cast<std::size_t>(events)) {
        Engine::Mutation m;
        m.fault.at_us = static_cast<double>(ops.size());
        const std::int64_t roll = rng.uniform_int(0, 99);
        if (roll < 35 && tenants.size() < kMaxTenants) {
            const std::string name = "t" + std::to_string(next_tenant);
            hermes::prog::Program program =
                hermes::prog::synthetic_program(config, seed, next_tenant);
            program.set_name(name);
            ++next_tenant;
            tenants.push_back(name);
            m.kind = Engine::Mutation::Kind::kAddProgram;
            m.program = std::move(program);
        } else if (roll < 50 && !tenants.empty()) {
            const std::size_t i = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(tenants.size()) - 1));
            m.kind = Engine::Mutation::Kind::kRemoveProgram;
            m.name = tenants[i];
            tenants.erase(tenants.begin() + static_cast<std::ptrdiff_t>(i));
        } else if (roll < 60) {
            m.kind = Engine::Mutation::Kind::kRetarget;
        } else if (roll < 75 && down_links.size() < kMaxDownLinks) {
            const std::size_t link = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(network.links().size()) - 1));
            if (std::find(down_links.begin(), down_links.end(), link) !=
                down_links.end()) {
                continue;  // already down; reroll
            }
            down_links.push_back(link);
            m.kind = Engine::Mutation::Kind::kFault;
            m.fault.kind = hermes::fault::FaultKind::kLinkDown;
            m.fault.a = network.links()[link].a;
            m.fault.b = network.links()[link].b;
        } else if (roll < 85 && !down_links.empty()) {
            const std::size_t i = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(down_links.size()) - 1));
            const std::size_t link = down_links[i];
            down_links.erase(down_links.begin() + static_cast<std::ptrdiff_t>(i));
            m.kind = Engine::Mutation::Kind::kFault;
            m.fault.kind = hermes::fault::FaultKind::kLinkUp;
            m.fault.a = network.links()[link].a;
            m.fault.b = network.links()[link].b;
        } else if (roll < 93 && down_switches.size() < kMaxDownSwitches) {
            const auto sw = static_cast<hermes::net::SwitchId>(rng.uniform_int(
                0, static_cast<std::int64_t>(network.switch_count()) - 1));
            if (std::find(down_switches.begin(), down_switches.end(), sw) !=
                down_switches.end()) {
                continue;
            }
            down_switches.push_back(sw);
            m.kind = Engine::Mutation::Kind::kFault;
            m.fault.kind = hermes::fault::FaultKind::kSwitchDown;
            m.fault.a = sw;
        } else if (!down_switches.empty()) {
            const std::size_t i = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(down_switches.size()) - 1));
            const hermes::net::SwitchId sw = down_switches[i];
            down_switches.erase(down_switches.begin() +
                                static_cast<std::ptrdiff_t>(i));
            m.kind = Engine::Mutation::Kind::kFault;
            m.fault.kind = hermes::fault::FaultKind::kSwitchUp;
            m.fault.a = sw;
        } else {
            m.kind = Engine::Mutation::Kind::kRetarget;
        }
        ops.push_back(std::move(m));
    }
    return ops;
}

std::int64_t counter_value(const hermes::obs::Sink& sink, std::string_view name) {
    for (const auto& c : sink.counters()) {
        if (c.name == name) return c.value;
    }
    return 0;
}

// Executed inside a forked child: recover (or freshly open) the journal,
// apply the remaining churn epochs, and write the final state digest to
// `result_path`. Never returns.
[[noreturn]] void run_churn_child(const Flags& flags,
                                  const hermes::net::Network& network,
                                  const std::vector<Engine::Mutation>& ops,
                                  const std::string& arm_point, std::int64_t nth,
                                  const std::string& result_path) {
    if (!arm_point.empty()) hermes::fault::arm_crash_point(arm_point, nth);
    hermes::obs::Sink sink;
    hermes::core::EngineOptions engine_options;
    engine_options.sink = &sink;
    Engine engine(network, engine_options);

    hermes::core::JournalOptions journal_options;
    journal_options.durability = flags.durability;
    journal_options.snapshot_interval = flags.snapshot_interval;
    journal_options.sink = &sink;
    hermes::util::StatusOr<Engine::RecoveryReport> recovered =
        engine.recover(flags.journal, journal_options);
    if (!recovered.ok()) {
        std::cerr << "crashtest child: recover failed: "
                  << recovered.status().to_string() << "\n";
        _exit(3);
    }

    // Epochs map 1:1 to churn ops, so the engine's epoch after recovery IS
    // the index of the next op to apply.
    for (std::size_t i = static_cast<std::size_t>(engine.epoch()); i < ops.size();
         ++i) {
        Engine::Mutation op = ops[i];
        if (op.kind == Engine::Mutation::Kind::kRemoveProgram) {
            // An infeasible epoch rolls its program additions back, so the
            // generator's tenant set can run ahead of the engine's. Demote a
            // remove of a program the engine does not hold to a retarget:
            // the engine state at epoch i is a deterministic function of the
            // applied prefix, so baseline and recovered runs demote the same
            // ops and stay epoch-for-epoch identical.
            const std::vector<std::string> names = engine.program_names();
            if (std::find(names.begin(), names.end(), op.name) == names.end()) {
                op = Engine::Mutation{};
                op.kind = Engine::Mutation::Kind::kRetarget;
            }
        }
        // Infeasible epochs are part of the deterministic run; only invalid
        // input (impossible by construction) would be a harness bug.
        hermes::util::StatusOr<hermes::core::DeltaOutcome> outcome =
            engine.apply({std::move(op)});
        if (!outcome.ok() &&
            outcome.status().code() == hermes::util::StatusCode::kInvalidInput) {
            std::cerr << "crashtest child: invalid churn op " << i << ": "
                      << outcome.status().to_string() << "\n";
            _exit(3);
        }
    }

    hermes::util::JsonObject digest;
    digest.emplace_back("fingerprint",
                        static_cast<std::int64_t>(engine.fingerprint()));
    digest.emplace_back("epoch", engine.epoch());
    digest.emplace_back("recoveries", counter_value(sink, "serve.recoveries"));
    digest.emplace_back("violations", counter_value(sink, "verify.violations"));
    digest.emplace_back("replayed", recovered.value().replayed_epochs);
    digest.emplace_back(
        "truncated_bytes",
        static_cast<std::int64_t>(recovered.value().truncated_bytes));
    std::ofstream out(result_path, std::ios::trunc);
    out << hermes::util::Json(std::move(digest)).dump() << "\n";
    out.close();
    _exit(out.good() ? 0 : 3);
}

struct ChildResult {
    bool exited = false;    // exited normally with status 0
    bool sigkilled = false; // the armed crash point fired
    hermes::util::Json digest;  // valid when exited
};

ChildResult run_churn(const Flags& flags, const hermes::net::Network& network,
                      const std::vector<Engine::Mutation>& ops,
                      const std::string& arm_point, std::int64_t nth) {
    const std::string result_path = flags.journal + ".result";
    std::remove(result_path.c_str());
    std::cout.flush();
    std::cerr.flush();
    const pid_t pid = fork();
    if (pid < 0) {
        std::cerr << "error: fork failed\n";
        std::exit(1);
    }
    if (pid == 0) run_churn_child(flags, network, ops, arm_point, nth, result_path);

    ChildResult result;
    int status = 0;
    if (waitpid(pid, &status, 0) != pid) return result;
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
        result.sigkilled = true;
        return result;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return result;

    std::ifstream in(result_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    hermes::util::StatusOr<hermes::util::Json> parsed =
        hermes::util::parse_json(buffer.str());
    if (!parsed.ok()) {
        std::cerr << "error: unreadable child digest at " << result_path << "\n";
        return result;
    }
    result.exited = true;
    result.digest = std::move(parsed).value();
    return result;
}

void reset_journal(const Flags& flags) {
    std::remove(flags.journal.c_str());
    std::remove((flags.journal + ".tmp").c_str());
}

}  // namespace

int main(int argc, char** argv) {
    Flags flags;
    {
        std::vector<std::string> args(argv + 1, argv + argc);
        hermes::cli::FlagParser parser(args);
        while (parser.next()) {
            const std::string& flag = parser.flag();
            if (flag == "--verbose") {
                flags.verbose = true;
                continue;
            }
            hermes::util::StatusOr<std::string> v = parser.value();
            if (!v.ok()) {
                std::cerr << "error: " << v.status().to_string() << "\n";
                return usage();
            }
            const std::string& value = v.value();
            if (flag == "--topology") {
                flags.topology = value;
            } else if (flag == "--events") {
                flags.events = std::stoi(value);
            } else if (flag == "--seed") {
                flags.seed = std::stoull(value);
            } else if (flag == "--journal") {
                flags.journal = value;
            } else if (flag == "--durability") {
                std::optional<hermes::core::Durability> d =
                    hermes::core::parse_durability(value);
                if (!d) {
                    std::cerr << "error: --durability takes none|batch|epoch\n";
                    return usage();
                }
                flags.durability = *d;
            } else if (flag == "--snapshot-interval") {
                flags.snapshot_interval = std::stoll(value);
            } else if (flag == "--point") {
                flags.points.push_back(value);
            } else if (flag == "--metrics-out") {
                flags.metrics_out = value;
            } else {
                std::cerr << "error: unknown flag " << flag << "\n";
                return usage();
            }
        }
    }

    hermes::util::StatusOr<hermes::net::Network> network =
        hermes::cli::parse_topology_spec(flags.topology);
    if (!network.ok()) {
        std::cerr << "error: " << network.status().to_string() << "\n";
        return 2;
    }
    const std::vector<Engine::Mutation> ops =
        make_churn(network.value(), flags.events, flags.seed);

    std::vector<std::string> points = flags.points;
    if (points.empty()) points = hermes::fault::crash_point_names();
    for (const std::string& p : points) {
        const auto& known = hermes::fault::crash_point_names();
        if (std::find(known.begin(), known.end(), p) == known.end()) {
            std::cerr << "error: unknown crash point '" << p << "'\n";
            return 2;
        }
    }

    // Uninterrupted baseline: same churn, same journaling, no crash.
    reset_journal(flags);
    const ChildResult baseline =
        run_churn(flags, network.value(), ops, /*arm_point=*/"", /*nth=*/1);
    if (!baseline.exited) {
        std::cerr << "FAIL: baseline churn run did not complete\n";
        return 1;
    }
    const std::int64_t baseline_fp = baseline.digest.get("fingerprint").int_value();
    std::int64_t violations = baseline.digest.get("violations").int_value();
    std::cout << "baseline: epoch " << baseline.digest.get("epoch").int_value()
              << " fingerprint " << baseline_fp << "\n";

    // Crash depth schedule: first hit, then ~1/3 and ~2/3 through the churn.
    std::vector<std::int64_t> depths{1, std::max<std::int64_t>(2, flags.events / 3),
                                     std::max<std::int64_t>(3, 2 * flags.events / 3)};
    depths.erase(std::unique(depths.begin(), depths.end()), depths.end());

    std::int64_t injected = 0, recovered_ok = 0, mismatches = 0, recoveries = 0;
    std::vector<std::string> unreached;
    for (const std::string& point : points) {
        bool fired = false;
        for (const std::int64_t nth : depths) {
            reset_journal(flags);
            const ChildResult crashed =
                run_churn(flags, network.value(), ops, point, nth);
            if (!crashed.sigkilled) {
                // The point never reached this depth in `events` epochs —
                // normal for rotation seams; deeper arms would not either.
                break;
            }
            fired = true;
            ++injected;
            const ChildResult recovery =
                run_churn(flags, network.value(), ops, /*arm_point=*/"", 1);
            if (!recovery.exited) {
                std::cout << "FAIL: " << point << ":" << nth
                          << " recovery run did not complete\n";
                continue;
            }
            const std::int64_t fp = recovery.digest.get("fingerprint").int_value();
            violations += recovery.digest.get("violations").int_value();
            recoveries += recovery.digest.get("recoveries").int_value();
            if (fp == baseline_fp) {
                ++recovered_ok;
                if (flags.verbose) {
                    std::cout << "ok: " << point << ":" << nth << " replayed "
                              << recovery.digest.get("replayed").int_value()
                              << " epochs, " << recovery.digest.get("truncated_bytes").int_value()
                              << " torn bytes, fingerprint matches\n";
                }
            } else {
                ++mismatches;
                std::cout << "FAIL: " << point << ":" << nth << " recovered to "
                          << fp << ", baseline " << baseline_fp << "\n";
            }
        }
        if (!fired) unreached.push_back(point);
    }
    for (const std::string& point : unreached) {
        std::cout << "FAIL: crash point " << point << " never fired\n";
    }

    std::cout << "crashes injected: " << injected << ", recovered bit-identical: "
              << recovered_ok << ", mismatches: " << mismatches
              << ", verifier violations: " << violations << "\n";

    if (!flags.metrics_out.empty()) {
        hermes::obs::Sink sink;
        sink.counter("crash.injected").add(injected);
        sink.counter("crash.recovered").add(recovered_ok);
        sink.counter("crash.fingerprint_mismatches").add(mismatches);
        sink.counter("crash.points_unreached")
            .add(static_cast<std::int64_t>(unreached.size()));
        sink.counter("serve.recoveries").add(recoveries);
        sink.counter("verify.violations").add(violations);
        if (!hermes::obs::write_metrics_json_file(sink, flags.metrics_out)) {
            std::cerr << "error: cannot write " << flags.metrics_out << "\n";
            return 1;
        }
    }
    std::remove((flags.journal + ".result").c_str());

    const bool ok = injected > 0 && recovered_ok == injected && mismatches == 0 &&
                    violations == 0 && unreached.empty();
    return ok ? 0 : 1;
}
