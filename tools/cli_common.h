// Shared front-end plumbing for hermes_cli and hermes_serve.
//
// Both binaries speak the same flag grammar ("--flag value" and
// "--flag=value"), the same program/topology spec grammars, and the same
// observability export flags, so the parsing lives here once. Everything
// returns util::StatusOr instead of exiting — each binary decides how a
// parse error reaches the user (usage() + exit 2 for the CLI, an error line
// for the daemon).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/network.h"
#include "obs/obs.h"
#include "prog/program.h"
#include "util/status.h"

namespace hermes::cli {

// Iterates "--flag value" / "--flag=value" argument lists:
//
//   FlagParser flags(args);
//   while (flags.next()) {
//       if (flags.flag() == "--seed") seed = parse(flags.value());
//       ...
//   }
//
// value() consumes the inline "=value" part or the next argument;
// kInvalidInput when neither exists. Boolean flags must not call value();
// has_inline_value() lets them reject "--flag=x".
class FlagParser {
public:
    explicit FlagParser(std::vector<std::string> args) : args_(std::move(args)) {}

    // Advances to the next flag; false at end of input.
    bool next();
    [[nodiscard]] const std::string& flag() const noexcept { return flag_; }
    [[nodiscard]] bool has_inline_value() const noexcept {
        return inline_value_.has_value();
    }
    [[nodiscard]] util::StatusOr<std::string> value();

private:
    std::vector<std::string> args_;
    std::size_t next_ = 0;
    std::string flag_;
    std::optional<std::string> inline_value_;
};

// Program specs (shared grammar, documented in hermes_cli's usage):
//   real[:N] | sketches | synthetic:N[:seed] | <path>.p4mini | <path>.prog
[[nodiscard]] util::StatusOr<std::vector<prog::Program>> parse_program_spec(
    const std::string& spec);

// Single-program spec for the serve wire protocol: the core grammar
// (core::resolve_program_spec) plus the file forms above.
[[nodiscard]] util::StatusOr<prog::Program> parse_serve_program_spec(
    const std::string& spec);

// Topology specs:
//   testbed[:switches[:stages]] | table3:<id> | random:<nodes>:<edges>[:seed]
[[nodiscard]] util::StatusOr<net::Network> parse_topology_spec(const std::string& spec);

// Observability export flags (--trace-out / --metrics-out).
struct ExportOptions {
    std::string trace_out;    // empty = no trace export
    std::string metrics_out;  // empty = no metrics export

    [[nodiscard]] bool wanted() const noexcept {
        return !trace_out.empty() || !metrics_out.empty();
    }
};

// Creates the run's sink in `storage` when an export was requested; null
// pointer = observability off.
[[nodiscard]] obs::Sink* make_sink(const ExportOptions& options,
                                   std::optional<obs::Sink>& storage);

// Writes the requested exports; kIo naming the unwritable path on failure.
[[nodiscard]] util::Status write_exports(const obs::Sink& sink,
                                         const ExportOptions& options);

}  // namespace hermes::cli
