#include "cli_common.h"

#include <stdexcept>

#include "core/serve.h"
#include "net/topozoo.h"
#include "obs/export.h"
#include "p4/frontend.h"
#include "prog/library.h"
#include "prog/parser.h"
#include "prog/synthetic.h"
#include "sim/testbed.h"
#include "util/rng.h"
#include "util/strings.h"

namespace hermes::cli {

namespace {

bool ends_with(const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool FlagParser::next() {
    if (next_ >= args_.size()) return false;
    flag_ = args_[next_++];
    inline_value_.reset();
    if (util::starts_with(flag_, "--")) {
        if (const auto eq = flag_.find('='); eq != std::string::npos) {
            inline_value_ = flag_.substr(eq + 1);
            flag_.erase(eq);
        }
    }
    return true;
}

util::StatusOr<std::string> FlagParser::value() {
    if (inline_value_) return *std::exchange(inline_value_, std::nullopt);
    if (next_ >= args_.size()) {
        return util::Status::invalid("missing value after " + flag_);
    }
    return args_[next_++];
}

util::StatusOr<std::vector<prog::Program>> parse_program_spec(const std::string& spec) {
    const auto parts = util::split(spec, ':');
    if (parts.empty()) return util::Status::invalid("empty program spec");
    try {
        if (parts[0] == "real") {
            std::vector<prog::Program> all = prog::real_programs();
            if (parts.size() > 1) {
                const auto n = util::parse_int(parts[1]);
                if (n < 1 || n > static_cast<std::int64_t>(all.size())) {
                    return util::Status::invalid("real:N needs 1 <= N <= 10");
                }
                all.erase(all.begin() + n, all.end());
            }
            return all;
        }
        if (parts[0] == "sketches") return prog::sketch_programs();
        if (parts[0] == "synthetic") {
            if (parts.size() < 2) return util::Status::invalid("synthetic:N[:seed]");
            const auto n = util::parse_int(parts[1]);
            const std::uint64_t seed =
                parts.size() > 2 ? static_cast<std::uint64_t>(util::parse_int(parts[2]))
                                 : 1;
            return prog::synthetic_programs(prog::SyntheticConfig{}, seed,
                                            static_cast<int>(n));
        }
    } catch (const std::invalid_argument& ex) {
        return util::Status::invalid(ex.what());
    }
    if (ends_with(spec, ".p4mini")) {
        util::StatusOr<prog::Program> p = p4::try_compile_file(spec);
        if (!p.ok()) return p.status();
        return std::vector<prog::Program>{std::move(p).value()};
    }
    if (ends_with(spec, ".prog")) {
        util::StatusOr<prog::Program> p = prog::try_load_program_file(spec);
        if (!p.ok()) return p.status();
        return std::vector<prog::Program>{std::move(p).value()};
    }
    return util::Status::invalid("unknown program spec '" + spec + "'");
}

util::StatusOr<prog::Program> parse_serve_program_spec(const std::string& spec) {
    if (ends_with(spec, ".p4mini")) return p4::try_compile_file(spec);
    if (ends_with(spec, ".prog")) return prog::try_load_program_file(spec);
    return core::resolve_program_spec(spec);
}

util::StatusOr<net::Network> parse_topology_spec(const std::string& spec) {
    const auto parts = util::split(spec, ':');
    if (parts.empty()) return util::Status::invalid("empty topology spec");
    try {
        if (parts[0] == "testbed") {
            sim::TestbedConfig config;
            if (parts.size() > 1) config.switch_count = util::parse_int(parts[1]);
            if (parts.size() > 2) {
                config.stages = static_cast<int>(util::parse_int(parts[2]));
            }
            return sim::make_testbed(config);
        }
        if (parts[0] == "table3") {
            if (parts.size() < 2) return util::Status::invalid("table3:<id>");
            return net::table3_topology(static_cast<int>(util::parse_int(parts[1])));
        }
        if (parts[0] == "random") {
            if (parts.size() < 3) {
                return util::Status::invalid("random:<nodes>:<edges>[:seed]");
            }
            util::SplitMix64 rng(
                parts.size() > 3 ? static_cast<std::uint64_t>(util::parse_int(parts[3]))
                                 : 7);
            return net::random_topology(util::parse_int(parts[1]),
                                        util::parse_int(parts[2]),
                                        net::TopologyConfig{}, rng);
        }
    } catch (const std::exception& ex) {
        return util::Status::invalid(ex.what());
    }
    return util::Status::invalid("unknown topology spec '" + spec + "'");
}

obs::Sink* make_sink(const ExportOptions& options, std::optional<obs::Sink>& storage) {
    if (!options.wanted()) return nullptr;
    obs::Sink& sink = storage.emplace();
    sink.name_thread("main");
    return &sink;
}

util::Status write_exports(const obs::Sink& sink, const ExportOptions& options) {
    if (!options.trace_out.empty() &&
        !obs::write_chrome_trace_file(sink, options.trace_out)) {
        return util::Status::io("cannot write trace to '" + options.trace_out + "'");
    }
    if (!options.metrics_out.empty() &&
        !obs::write_metrics_json_file(sink, options.metrics_out)) {
        return util::Status::io("cannot write metrics to '" + options.metrics_out + "'");
    }
    return {};
}

}  // namespace hermes::cli
