// hermes_cli — command-line front end for the Hermes framework.
//
//   hermes_cli compile <file.p4mini>
//       Compile a mini-P4 program and print its MATs and dependencies.
//
//   hermes_cli analyze --programs <spec> [--programs <spec> ...]
//       Merge the programs, run the metadata analyzer, print the TDG.
//
//   hermes_cli solve --programs <spec> --topology <spec>
//              [--strategy greedy|optimal|ms|sonata|speed|mtp|fp|p4all|ffl|ffls]
//              [--eps1 <us>] [--eps2 <switches>] [--time-limit <s>]
//              [--threads <n>] [--seed <n>] [--csv]
//              [--trace-out <file>] [--metrics-out <file>]
//              [--fault-script <file>|random:<events>[:seed]]
//              [--repair-deadline <s>] [--repair-milp]
//       Deploy and print placements, routes, and metrics. With
//       --fault-script, afterwards replay the failure script event by
//       event: inject the fault, run the self-healing repair ladder
//       (core/repair.h), verify the repaired deployment, and report
//       per-event status plus traffic lost before each repair.
//
//   hermes_cli replay ...
//       Same flags as solve, but --fault-script is required: the fault
//       replay is the point of the run.
//
//   hermes_cli serve ...
//       The hermes_serve daemon (same flags; see tools/hermes_serve.cpp).
//
//   The pre-subcommand spelling `hermes_cli deploy ...` keeps working for
//   one release as an alias of `solve`.
//
// Every option accepts both "--flag value" and "--flag=value". Unknown
// subcommands and options exit with status 2. Parse and I/O errors print one
// uniform "error: file:line:col: message" line and exit with status 1.
//
// --trace-out writes a Chrome trace_event JSON of the run (open it in
// chrome://tracing or https://ui.perfetto.dev); --metrics-out writes the
// flat counters/histograms JSON described in obs/export.h.
//
// Program specs:
//   real[:N]           the library's real programs (first N, default 10)
//   sketches           the ten sketch programs
//   synthetic:N[:seed] N synthetic programs
//   <path>.p4mini      a mini-P4 source file
//   <path>.prog        a textual program file
//
// Topology specs:
//   testbed[:switches[:stages]]   linear all-programmable testbed
//   table3:<id>                   Table III WAN topology (1..10)
//   random:<nodes>:<edges>[:seed] connected random WAN, 50% programmable
#include <iostream>
#include <map>
#include <optional>

#include "baselines/common.h"
#include "cli_common.h"
#include "core/hermes.h"
#include "core/objective.h"
#include "core/repair.h"
#include "core/verifier.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "net/path_oracle.h"
#include "serve_main.h"
#include "sim/engine.h"
#include "sim/replay.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "p4/frontend.h"
#include "tdg/analyzer.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace hermes;

[[noreturn]] void usage(const std::string& message = "") {
    if (!message.empty()) std::cerr << "error: " << message << "\n\n";
    std::cerr <<
        R"(usage:
  hermes_cli compile <file.p4mini>
  hermes_cli analyze --programs <spec> [--programs <spec> ...]
  hermes_cli solve   --programs <spec> [--programs <spec> ...]
                     --topology <spec> [--strategy <name>] [--eps1 <us>]
                     [--eps2 <switches>] [--time-limit <seconds>]
                     [--threads <n>] [--seed <n>] [--csv]
                     [--trace-out <file>] [--metrics-out <file>]
                     [--fault-script <file>|random:<events>[:seed]]
                     [--repair-deadline <seconds>] [--repair-milp]
                     [--sim-flows <n>] [--sim-threads <n>]
  hermes_cli replay  (solve flags; --fault-script required)
  hermes_cli serve   (hermes_serve flags; see tools/hermes_serve.cpp)

  `hermes_cli deploy ...` remains an alias of `solve` for one release.

program specs : real[:N] | sketches | synthetic:N[:seed] | *.p4mini | *.prog
topology specs: testbed[:switches[:stages]] | table3:<id> | random:<n>:<e>[:seed]
strategies    : greedy (default) | optimal | ms | sonata | speed | mtp | fp
                | p4all | ffl | ffls
--threads     : branch-and-bound / anchor-search workers
                (default 0 = all hardware threads)
--seed        : RNG seed handed to the solver options (default 1)
--trace-out   : write a Chrome trace_event JSON of the run
--metrics-out : write the run's counters and histograms as JSON
--fault-script: failure scenario — a script file (see src/fault/fault.h for
                the text format) or random:<events>[:seed] for a generated one
--repair-deadline: wall-clock budget per repair in seconds (0 = none); on
                expiry the repair degrades to its best incumbent instead of
                escalating further
--repair-milp : allow the repair ladder to escalate to a MILP re-solve
--sim-flows   : after deploying, push this many concurrent flows through the
                deployment's route with the sharded traffic engine and
                report FCT/goodput under contention (default 0 = off)
--sim-threads : worker threads for the traffic engine (default 1; results
                are thread-count invariant)
options also accept the --flag=value spelling
)";
    std::exit(2);
}

// Unwraps a StatusOr, printing the uniform one-line error and exiting on
// failure — every parse/IO problem reaches the user through this path.
template <typename T>
T unwrap(util::StatusOr<T> result) {
    if (!result.ok()) {
        std::cerr << "error: " << result.status().to_string() << "\n";
        std::exit(1);
    }
    return std::move(result).value();
}

// Spec parse failures are usage errors (exit 2), not runtime errors.
template <typename T>
T unwrap_spec(util::StatusOr<T> result) {
    if (!result.ok()) usage(result.status().message());
    return std::move(result).value();
}

void print_tdg(const tdg::Tdg& t) {
    util::Table nodes({"MAT", "match fields", "resource", "capacity"});
    for (tdg::NodeId v = 0; v < t.node_count(); ++v) {
        const tdg::Mat& m = t.node(v);
        std::string matches;
        for (const tdg::Field& f : m.match_fields()) {
            if (!matches.empty()) matches += ", ";
            matches += f.name;
        }
        nodes.add_row({m.name(), matches, util::Table::num(m.resource_units(), 2),
                       util::Table::num(m.rule_capacity())});
    }
    nodes.print(std::cout, "MATs (" + std::to_string(t.node_count()) + ")");
    std::cout << '\n';
    util::Table edges({"from", "to", "type", "A(a,b) bytes"});
    for (const tdg::Edge& e : t.edges()) {
        edges.add_row({t.node(e.from).name(), t.node(e.to).name(), tdg::to_string(e.type),
                       util::Table::num(std::int64_t{e.metadata_bytes})});
    }
    edges.print(std::cout, "dependencies (" + std::to_string(t.edge_count()) + ")");
}

int cmd_compile(const std::vector<std::string>& args) {
    if (args.size() != 1) usage("compile takes exactly one file");
    const prog::Program p = unwrap(p4::try_compile_file(args[0]));
    std::cout << "program " << p.name() << ": " << p.mat_count() << " tables\n\n";
    tdg::Tdg t = p.to_tdg();
    tdg::analyze(t);
    print_tdg(t);
    return 0;
}

struct Options {
    std::vector<prog::Program> programs;
    std::optional<net::Network> network;
    std::string strategy = "greedy";
    double eps1 = std::numeric_limits<double>::infinity();
    std::int64_t eps2 = std::numeric_limits<std::int64_t>::max();
    double time_limit = 30.0;
    int threads = 0;  // 0 = hardware concurrency
    std::uint64_t seed = 1;
    bool csv = false;
    cli::ExportOptions exports;
    std::string fault_script;  // empty = no fault replay
    double repair_deadline = 0.0;  // seconds; 0 = unbounded repairs
    bool repair_milp = false;
    std::int64_t sim_flows = 0;  // 0 = no traffic simulation
    int sim_threads = 1;
};

Options parse_options(const std::vector<std::string>& args, bool need_topology) {
    Options options;
    cli::FlagParser parser(args);
    auto value = [&]() -> std::string {
        util::StatusOr<std::string> v = parser.value();
        if (!v.ok()) usage(v.status().message());
        return std::move(v).value();
    };
    while (parser.next()) {
        const std::string& flag = parser.flag();
        if (flag == "--programs") {
            for (prog::Program& p : unwrap_spec(cli::parse_program_spec(value()))) {
                options.programs.push_back(std::move(p));
            }
        } else if (flag == "--topology") {
            options.network = unwrap_spec(cli::parse_topology_spec(value()));
        } else if (flag == "--strategy") {
            options.strategy = value();
        } else if (flag == "--eps1") {
            options.eps1 = util::parse_double(value());
        } else if (flag == "--eps2") {
            options.eps2 = util::parse_int(value());
        } else if (flag == "--time-limit") {
            options.time_limit = util::parse_double(value());
        } else if (flag == "--threads") {
            options.threads = static_cast<int>(util::parse_int(value()));
        } else if (flag == "--seed") {
            options.seed = static_cast<std::uint64_t>(util::parse_int(value()));
        } else if (flag == "--trace-out") {
            options.exports.trace_out = value();
        } else if (flag == "--metrics-out") {
            options.exports.metrics_out = value();
        } else if (flag == "--fault-script") {
            options.fault_script = value();
        } else if (flag == "--repair-deadline") {
            options.repair_deadline = util::parse_double(value());
        } else if (flag == "--sim-flows") {
            options.sim_flows = util::parse_int(value());
        } else if (flag == "--sim-threads") {
            options.sim_threads = static_cast<int>(util::parse_int(value()));
        } else if (flag == "--repair-milp") {
            if (parser.has_inline_value()) usage("--repair-milp takes no value");
            options.repair_milp = true;
        } else if (flag == "--csv") {
            if (parser.has_inline_value()) usage("--csv takes no value");
            options.csv = true;
        } else {
            usage("unknown option '" + flag + "'");
        }
    }
    if (options.programs.empty()) usage("--programs is required");
    if (need_topology && !options.network) usage("--topology is required");
    return options;
}

void write_exports_or_die(const obs::Sink& sink, const Options& options) {
    const util::Status status = cli::write_exports(sink, options.exports);
    if (!status.ok()) {
        std::cerr << "error: " << status.to_string() << "\n";
        std::exit(1);
    }
}

int cmd_analyze(const std::vector<std::string>& args) {
    const Options options = parse_options(args, /*need_topology=*/false);
    std::optional<obs::Sink> sink_storage;
    obs::Sink* const sink = cli::make_sink(options.exports, sink_storage);
    const tdg::Tdg t = core::analyze(options.programs, sink);
    std::cout << options.programs.size() << " programs -> merged TDG with "
              << t.node_count() << " MATs, " << t.edge_count() << " dependencies, "
              << t.total_metadata_bytes() << " total metadata bytes, "
              << util::Table::num(t.total_resource_units(), 2) << " resource units\n\n";
    print_tdg(t);
    if (sink != nullptr) write_exports_or_die(*sink, options);
    return 0;
}

// Replays a failure script against the live deployment: inject each event,
// run the repair ladder, verify, and measure traffic lost in the window
// before the repair lands. Returns false when any repair or verification
// fails.
bool run_fault_replay(const Options& options, net::Network& network,
                      const tdg::Tdg& merged, core::Deployment deployment,
                      net::PathOracle& oracle, obs::Sink* sink) {
    std::vector<fault::FaultEvent> script;
    const auto parts = util::split(options.fault_script, ':');
    if (!parts.empty() && parts[0] == "random") {
        if (parts.size() < 2) usage("--fault-script random:<events>[:seed]");
        fault::ScriptConfig config;
        config.events = static_cast<int>(util::parse_int(parts[1]));
        const std::uint64_t seed =
            parts.size() > 2 ? static_cast<std::uint64_t>(util::parse_int(parts[2]))
                             : options.seed;
        script = fault::random_fault_script(network, seed, config);
    } else {
        script = unwrap(fault::load_fault_script(options.fault_script));
    }

    fault::Injector injector(network, &oracle, sink);
    core::RepairOptions repair_options;
    repair_options.threads = options.threads;
    repair_options.seed = options.seed;
    repair_options.sink = sink;
    repair_options.epsilon1 = options.eps1;
    repair_options.epsilon2 = options.eps2;
    repair_options.oracle = &oracle;
    repair_options.allow_milp = options.repair_milp;
    repair_options.milp.time_limit_seconds = options.time_limit;
    repair_options.milp.threads = options.threads;

    util::Table table({"t (us)", "event", "status", "moved", "rerouted",
                       "repair (ms)", "pkts lost"});
    bool ok = true;
    std::int64_t total_lost = 0;
    for (const fault::FaultEvent& e : script) {
        injector.apply(e);
        const core::Deployment before = deployment;
        if (options.repair_deadline > 0.0) {
            repair_options.deadline = core::Deadline::after(options.repair_deadline);
        }
        const core::RepairResult r = core::repair(merged, network, deployment,
                                                  repair_options);
        std::int64_t lost = 0;
        if (r.ok) {
            deployment = r.deployment;
            const core::VerificationReport report =
                core::verify(merged, network, deployment);
            if (!report.ok) {
                ok = false;
                for (const std::string& v : report.violations) {
                    std::cerr << "  ! " << v << "\n";
                }
            }
            sim::ReplayConfig replay_config;
            replay_config.flow.payload_bytes_total = 1460 * 10;
            replay_config.sim.sink = sink;
            lost = sim::replay_failure_window(merged, network, before, deployment,
                                              replay_config, &oracle)
                       .packets_lost_before_repair;
            total_lost += lost;
        } else {
            ok = false;
        }
        std::string what = to_string(e.kind);
        what += ' ';
        what += std::to_string(e.a);
        if (e.is_link()) what += "-" + std::to_string(e.b);
        table.add_row({util::Table::num(e.at_us, 1), what, r.status,
                       util::Table::num(r.replaced_mats),
                       util::Table::num(r.rerouted_pairs),
                       util::Table::num(r.repair_seconds * 1e3, 2),
                       util::Table::num(lost)});
    }
    if (options.csv) {
        table.write_csv(std::cout);
    } else {
        table.print(std::cout, "fault replay (" + std::to_string(script.size()) +
                                   " events)");
    }
    std::cout << "\npackets lost before repair: " << total_lost << "\n"
              << "post-script overhead      : "
              << core::max_pair_metadata(merged, deployment) << " B\n"
              << "script survived           : " << (ok ? "yes" : "NO") << "\n";
    return ok;
}

// --sim-flows: concurrent traffic over the deployment's end-to-end route
// through the sharded engine (sim/engine.h). All flows share the route's
// links, so later launches queue behind earlier ones; the spread between the
// first and last FCT is the contention price. Engine counters (sim.*) land
// in --metrics-out through the shared sink.
void run_traffic_sim(const Options& options, const net::Network& network,
                     const tdg::Tdg& merged, const core::Deployment& deployment,
                     const core::DeploymentMetrics& metrics,
                     net::PathOracle& oracle, obs::Sink* sink) {
    const auto hops = sim::deployment_hops(merged, network, deployment, &oracle);
    sim::FlowSpec spec;
    spec.payload_bytes_total = 1 << 20;  // 1 MB message per flow
    spec.overhead_bytes = static_cast<int>(metrics.max_inflight_metadata_bytes);
    sim::EngineConfig config;
    config.threads = options.sim_threads;
    config.sink = sink;
    sim::Engine engine(config);
    const sim::RouteId route = engine.add_route(hops);
    std::vector<sim::FlowId> flows;
    flows.reserve(static_cast<std::size_t>(options.sim_flows));
    for (std::int64_t i = 0; i < options.sim_flows; ++i) {
        flows.push_back(engine.add_flow(spec, route, static_cast<double>(i)));
    }
    engine.run();
    const sim::EngineStats& stats = engine.stats();
    std::cout << "traffic simulation  : " << stats.flows << " flows, "
              << stats.packets << " packets, " << stats.events << " events ("
              << stats.shards << " shards, " << stats.window_syncs
              << " windows, " << stats.fastpath_flows << " fast-path)\n"
              << "  first flow FCT    : " << engine.result(flows.front()).fct_us
              << " us\n"
              << "  last flow FCT     : " << engine.result(flows.back()).fct_us
              << " us\n"
              << "  horizon           : " << stats.horizon_us << " us\n";
}

int cmd_solve(const std::vector<std::string>& args, bool require_fault_script) {
    Options options = parse_options(args, /*need_topology=*/true);
    if (require_fault_script && options.fault_script.empty()) {
        usage("replay requires --fault-script");
    }
    net::Network& network = *options.network;
    std::optional<obs::Sink> sink_storage;
    obs::Sink* const sink = cli::make_sink(options.exports, sink_storage);
    const tdg::Tdg merged = core::analyze(options.programs, sink);

    core::Deployment deployment;
    tdg::Tdg deployed_tdg = merged;
    double seconds = 0.0;
    std::string status;
    net::PathOracle oracle(network);

    if (options.strategy == "greedy" || options.strategy == "optimal") {
        core::HermesOptions hermes_options;
        hermes_options.threads = options.threads;
        hermes_options.seed = options.seed;
        hermes_options.sink = sink;
        hermes_options.epsilon1 = options.eps1;
        hermes_options.epsilon2 = options.eps2;
        hermes_options.milp.time_limit_seconds = options.time_limit;
        hermes_options.milp.threads = options.threads;
        hermes_options.segment_level_milp = merged.node_count() > 40;
        hermes_options.oracle = &oracle;
        const core::DeployOutcome outcome = unwrap(
            options.strategy == "greedy"
                ? core::try_deploy_greedy(merged, network, hermes_options)
                : core::try_deploy_optimal(merged, network, hermes_options));
        deployment = outcome.deployment;
        seconds = outcome.solve_seconds;
        status = outcome.solver_status;
    } else {
        static const std::map<std::string, std::string> names{
            {"ms", "MS"},   {"sonata", "Sonata"}, {"speed", "SPEED"}, {"mtp", "MTP"},
            {"fp", "FP"},   {"p4all", "P4All"},   {"ffl", "FFL"},     {"ffls", "FFLS"}};
        const auto it = names.find(options.strategy);
        if (it == names.end()) usage("unknown strategy '" + options.strategy + "'");
        baselines::BaselineOptions baseline_options;
        baseline_options.threads = options.threads;
        baseline_options.seed = options.seed;
        baseline_options.sink = sink;
        baseline_options.epsilon1 = options.eps1;
        baseline_options.epsilon2 = options.eps2;
        baseline_options.milp.time_limit_seconds = options.time_limit;
        baseline_options.milp.threads = options.threads;
        for (const auto& strategy : baselines::all_strategies()) {
            if (strategy->name() != it->second) continue;
            baselines::StrategyOutcome outcome =
                strategy->deploy(options.programs, network, baseline_options);
            deployment = std::move(outcome.deployment);
            deployed_tdg = std::move(outcome.merged);
            seconds = outcome.solve_seconds;
            status = outcome.status;
        }
    }

    const core::DeploymentMetrics metrics =
        core::evaluate(deployed_tdg, network, deployment);
    core::VerifyOptions verify_options;
    verify_options.sink = sink;
    const core::VerificationReport report =
        core::verify(deployed_tdg, network, deployment, verify_options);

    util::Table placements({"MAT", "switch", "stage"});
    for (tdg::NodeId v = 0; v < deployed_tdg.node_count(); ++v) {
        placements.add_row({deployed_tdg.node(v).name(),
                            network.props(deployment.placements[v].sw).name,
                            util::Table::num(std::int64_t{deployment.placements[v].stage})});
    }
    if (options.csv) {
        placements.write_csv(std::cout);
    } else {
        placements.print(std::cout, "placements (" + options.strategy + ")");
    }
    std::cout << "\nper-packet overhead : " << metrics.max_pair_metadata_bytes << " B"
              << " (in-flight " << metrics.max_inflight_metadata_bytes << " B)\n"
              << "occupied switches   : " << metrics.occupied_switches << "\n"
              << "route latency       : " << metrics.route_latency_us << " us\n"
              << "solve time          : " << seconds * 1e3 << " ms (" << status << ")\n"
              << "verified            : " << (report.ok ? "yes" : "NO") << "\n";
    if (!report.ok) {
        for (const std::string& v : report.violations) std::cerr << "  ! " << v << "\n";
    }
    if (options.sim_flows > 0 && report.ok) {
        run_traffic_sim(options, network, deployed_tdg, deployment, metrics,
                        oracle, sink);
    }
    bool survived = true;
    if (!options.fault_script.empty()) {
        std::cout << "\n";
        survived = run_fault_replay(options, network, deployed_tdg, deployment,
                                    oracle, sink);
    }
    if (sink != nullptr) write_exports_or_die(*sink, options);
    return report.ok && survived ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) usage();
    const std::string command = args.front();
    args.erase(args.begin());
    try {
        if (command == "compile") return cmd_compile(args);
        if (command == "analyze") return cmd_analyze(args);
        if (command == "solve") return cmd_solve(args, /*require_fault_script=*/false);
        if (command == "replay") return cmd_solve(args, /*require_fault_script=*/true);
        if (command == "serve") return cli::run_serve(args);
        // One-release legacy alias from before the subcommand split.
        if (command == "deploy") return cmd_solve(args, /*require_fault_script=*/false);
        usage("unknown command '" + command + "'");
    } catch (const std::exception& ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
}
