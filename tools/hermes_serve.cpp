// hermes_serve — deployment-as-a-service daemon around core::Engine.
//
//   hermes_serve --topology <spec> [options]            stdin/stdout mode
//   hermes_serve --topology <spec> --listen <port>      TCP mode (loopback)
//   hermes_serve --topology <spec> --emit-churn <n>[:seed]
//       Print a deterministic churn script (one JSON request per line) and
//       exit — pipe it back into a serving instance for smoke tests:
//         hermes_serve --topology table3:1 --emit-churn 100:7 \
//           | hermes_serve --topology table3:1 --metrics-out metrics.json
//
// The wire protocol (line-delimited JSON requests/responses) and the epoch
// batching rules are documented in src/core/serve.h and DESIGN.md §5j.
//
// Options (also accepted by `hermes_cli serve`):
//   --topology <spec>       testbed[:n[:stages]] | table3:<id> | random:<n>:<e>[:seed]
//   --eps1 <us>             end-to-end latency bound (default: unbounded)
//   --eps2 <switches>       occupied-switch bound (default: unbounded)
//   --threads <n>           solver worker threads (default 1)
//   --seed <n>              RNG seed (default 1)
//   --epoch-deadline <s>    wall-clock budget per epoch re-solve (0 = none)
//   --repair-deadline <s>   alias of --epoch-deadline (the paper-facing
//                           spelling); past it an epoch degrades to the
//                           verified incumbent instead of failing
//   --time-limit <s>        MILP escalation budget (default 30)
//   --allow-milp            let failed delta/greedy epochs escalate to MILP
//   --listen <port>         serve TCP on 127.0.0.1:<port> (0 = ephemeral;
//                           the bound port is printed to stderr)
//   --max-connections <n>   exit after n TCP connections (0 = run forever)
//   --journal <file>        write-ahead journal: recover state from <file>
//                           at startup (if it exists), then log every epoch
//                           before mutating (DESIGN.md §5k)
//   --durability <mode>     none | batch (default) | epoch — fsync policy
//                           for journal appends
//   --snapshot-interval <n> epochs between snapshot rotations (default 64)
//   --max-request-bytes <n> reject request lines larger than n bytes with a
//                           retryable resource_exhausted error (default 1MiB,
//                           0 = unbounded)
//   --max-epoch-ops <n>     shed mutations staged past n per epoch (default
//                           1024, 0 = unbounded)
//   --metrics-out <file>    write counters/histograms JSON at exit
//   --trace-out <file>      write Chrome trace JSON at exit
#include <iostream>
#include <string>
#include <vector>

#include "serve_main.h"

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string& a : args) {
        if (a == "--help" || a == "-h") {
            std::cerr << "usage: hermes_serve --topology <spec> [--listen <port>]\n"
                         "       hermes_serve --topology <spec> --emit-churn <n>[:seed]\n"
                         "see the header of tools/hermes_serve.cpp for all options\n";
            return 0;
        }
    }
    return hermes::cli::run_serve(args);
}
