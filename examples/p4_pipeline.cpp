// End-to-end tour from source code to packets on the wire:
//   1. compile a mini-P4 program,
//   2. analyze + deploy it across small switches with Hermes,
//   3. synthesize per-switch configurations with the backend,
//   4. trace one packet through the distributed pipeline and check the
//      result against a monolithic single-switch run.
#include <iostream>

#include "core/hermes.h"
#include "core/verifier.h"
#include "dataplane/interp.h"
#include "p4/frontend.h"
#include "sim/testbed.h"

namespace {

constexpr const char* kSource = R"(
// heavy-hitter detection with an escalation path
program heavy_hitter;

header ipv4 { src_addr: 32; dst_addr: 32; }
header l4 { dst_port: 16; }
metadata meta { counter_index: 32; count: 32; is_heavy: 1; mirror_id: 16; }

action hash_flow()  { writes meta.counter_index; }
action bump()       { writes meta.count; }
action classify()   { writes meta.is_heavy; }
action mirror_it()  { writes meta.mirror_id; }

table hh_hash {
  key = { ipv4.src_addr; ipv4.dst_addr; l4.dst_port; }
  actions = { hash_flow; }
  size = 64;
  resource = 0.5;
}
table hh_count {
  key = { meta.counter_index; }
  actions = { bump; }
  size = 64;
  resource = 0.6;
}
table hh_classify {
  key = { meta.count; }
  actions = { classify; }
  size = 16;
  resource = 0.4;
}
table hh_mirror {
  key = { meta.is_heavy; }
  actions = { mirror_it; }
  size = 8;
  resource = 0.3;
}

control {
  apply(hh_hash);
  apply(hh_count);
  apply(hh_classify);
  if (meta.is_heavy) {
    apply(hh_mirror);
  }
}
)";

}  // namespace

int main() {
    using namespace hermes;

    const prog::Program program = p4::compile(kSource);
    std::cout << "Compiled '" << program.name() << "': " << program.mat_count()
              << " tables\n";

    const tdg::Tdg merged = core::analyze({program});
    for (const tdg::Edge& e : merged.edges()) {
        std::cout << "  " << merged.node(e.from).name() << " -> "
                  << merged.node(e.to).name() << " [" << tdg::to_string(e.type) << ", "
                  << e.metadata_bytes << " B]\n";
    }

    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 1;  // one table per switch: fully distributed
    const net::Network network = sim::make_testbed(config);
    const core::DeployOutcome outcome = core::try_deploy_greedy(merged, network).value();
    std::cout << "\nDeployed across " << outcome.metrics.occupied_switches
              << " switches; per-packet overhead "
              << outcome.metrics.max_pair_metadata_bytes << " B; verified: "
              << (core::verify(merged, network, outcome.deployment).ok ? "yes" : "NO")
              << "\n\n";

    const dataplane::NetworkConfig configs =
        dataplane::build_configs(merged, network, outcome.deployment);

    dataplane::Packet packet;
    packet.set_header("ipv4.src_addr", 0x0a000001, 4);
    packet.set_header("ipv4.dst_addr", 0x0a0000ff, 4);
    packet.set_header("l4.dst_port", 53, 2);

    const dataplane::InterpResult mono = dataplane::run_monolithic(merged, packet);
    const dataplane::InterpResult dist =
        dataplane::run_deployment(merged, network, outcome.deployment, configs, packet);

    std::cout << "Packet trace (distributed):\n";
    for (const dataplane::ExecutionRecord& rec : dist.trace) {
        std::cout << "  " << network.props(rec.switch_id).name << " stage " << rec.stage
                  << ": " << merged.node(rec.node).name()
                  << (rec.matched ? "" : "  [miss]") << "\n";
    }
    std::cout << "Wire bytes per hop:";
    for (const int bytes : dist.wire_bytes) std::cout << ' ' << bytes;
    std::cout << "\n\nFinal metadata writes (distributed == monolithic: "
              << (mono.writes == dist.writes ? "yes" : "NO") << "):\n";
    for (const auto& [name, value] : dist.writes) {
        std::cout << "  " << name << " = 0x" << std::hex << value.value << std::dec << " ("
                  << value.size_bytes << " B)\n";
    }
    return mono.writes == dist.writes ? 0 : 1;
}
