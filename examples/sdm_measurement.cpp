// Software-defined measurement (SDM): the paper's motivating scenario.
//
// An operator wants ten sketch algorithms running concurrently. Each sketch
// alone is small, but together they exhaust one switch — the exact situation
// network-wide deployment exists for. This example shows:
//   * how TDG merging deduplicates the sketches' shared hash computation,
//   * how Hermes splits the merged workload across switches while keeping
//     the inter-switch metadata (the hash indexes, counters, flags) minimal,
//   * the cost of ignoring metadata: the same workload placed with
//     resource-driven first-fit splitting.
#include <iostream>

#include "core/greedy.h"
#include "core/hermes.h"
#include "core/objective.h"
#include "core/verifier.h"
#include "prog/library.h"
#include "sim/testbed.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    const std::vector<prog::Program> sketches = prog::sketch_programs();
    std::size_t separate_mats = 0;
    for (const prog::Program& p : sketches) separate_mats += p.mat_count();

    const tdg::Tdg merged = core::analyze(sketches);
    std::cout << "Ten sketches: " << separate_mats << " MATs separately, "
              << merged.node_count() << " after merging (shared hash stages "
              << "deduplicated), " << merged.total_resource_units()
              << " resource units total\n\n";

    // Small switches force a genuinely distributed deployment.
    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 3;
    const net::Network network = sim::make_testbed(config);

    const core::DeployOutcome hermes_outcome = core::try_deploy_greedy(merged, network).value();

    // The metadata-oblivious alternative: resource first-fit segments on the
    // same chain machinery.
    std::vector<tdg::NodeId> all(merged.node_count());
    for (tdg::NodeId v = 0; v < merged.node_count(); ++v) all[v] = v;
    const core::GreedyResult first_fit = core::deploy_segments_on_chain(
        merged, network,
        core::split_tdg_first_fit(merged, all, config.stages, config.stage_capacity),
        {});

    util::Table table({"strategy", "overhead(B)", "switches", "verified"});
    auto add = [&](const std::string& name, const core::Deployment& d) {
        table.add_row({name, util::Table::num(core::max_pair_metadata(merged, d)),
                       util::Table::num(static_cast<std::int64_t>(
                           d.occupied_switches().size())),
                       core::verify(merged, network, d).ok ? "yes" : "NO"});
    };
    add("Hermes (min-metadata cuts)", hermes_outcome.deployment);
    add("first-fit (metadata-oblivious)", first_fit.deployment);
    table.print(std::cout, "SDM deployment: 10 concurrent sketches on 4 small switches");

    std::cout << "\nPer-switch placement (Hermes):\n";
    for (const net::SwitchId u : hermes_outcome.deployment.occupied_switches()) {
        std::cout << "  " << network.props(u).name << ":";
        for (const tdg::NodeId v : hermes_outcome.deployment.mats_on(u)) {
            std::cout << ' ' << merged.node(v).name();
        }
        std::cout << '\n';
    }
    return 0;
}
