// NFV service chain offload (§II): a firewall -> NAT -> load balancer ->
// monitor chain pushed into the data plane. Unlike independent programs, a
// service chain is one pipeline: each NF consumes the previous NF's verdict
// or index metadata, so wherever the chain is cut across switches, that NF
// state must ride in packet headers. This example builds the chain as a
// single program with explicit inter-NF dependencies, deploys it with both
// Hermes paths, and prints the metadata each inter-switch hop carries.
#include <iostream>

#include "core/hermes.h"
#include "core/objective.h"
#include "core/verifier.h"
#include "sim/testbed.h"
#include "util/table.h"

namespace {

hermes::prog::Program build_chain() {
    using namespace hermes::tdg;
    using hermes::prog::Program;

    auto five_tuple = [] {
        return std::vector<Field>{header_field("ipv4.src_addr", 4),
                                  header_field("ipv4.dst_addr", 4),
                                  header_field("l4.src_port", 2),
                                  header_field("l4.dst_port", 2)};
    };
    Program p("nf_chain");
    // NF1: firewall — classifies and emits a verdict every later NF reads.
    p.add_mat(Mat("fw_acl", five_tuple(),
                  {Action{"verdict", {metadata_field("meta.fw_verdict", 1)}}}, 8192, 0.8,
                  MatchKind::kTernary));
    p.add_mat(Mat("fw_meter", {metadata_field("meta.fw_verdict", 1)},
                  {Action{"police", {metadata_field("meta.fw_color", 1)}}}, 256, 0.5));
    // NF2: NAT — translates only packets the firewall admitted.
    p.add_mat(Mat("nat_lookup", {metadata_field("meta.fw_verdict", 1)},
                  {Action{"hit", {metadata_field("meta.nat_index", 4)}}}, 4096, 0.8));
    p.add_mat(Mat("nat_rewrite", {metadata_field("meta.nat_index", 4)},
                  {Action{"rewrite", {header_field("ipv4.src_addr", 4),
                                      metadata_field("meta.nat_done", 1)}}},
                  4096, 0.7));
    // NF3: load balancer — hashes the translated flow.
    p.add_mat(Mat("lb_hash", {metadata_field("meta.nat_done", 1)},
                  {Action{"hash", {metadata_field("meta.lb_index", 4)}}}, 64, 0.5));
    p.add_mat(Mat("lb_select", {metadata_field("meta.lb_index", 4)},
                  {Action{"pick", {metadata_field("meta.backend_id", 2)}}}, 1024, 0.6));
    // NF4: monitor — counts per backend decision.
    p.add_mat(Mat("mon_count", {metadata_field("meta.backend_id", 2)},
                  {Action{"count", {metadata_field("meta.flow_count", 4)}}}, 16, 0.7));
    p.add_mat(Mat("mon_report", {metadata_field("meta.flow_count", 4)},
                  {Action{"report", {metadata_field("meta.report_flag", 1)}}}, 32, 0.4));
    return p;
}

}  // namespace

int main() {
    using namespace hermes;

    const prog::Program chain = build_chain();
    const tdg::Tdg merged = core::analyze({chain});
    std::cout << "NF chain: " << merged.node_count() << " MATs, "
              << merged.edge_count() << " dependencies, "
              << merged.total_resource_units() << " resource units\n\n";

    sim::TestbedConfig config;
    config.switch_count = 4;
    config.stages = 3;
    const net::Network network = sim::make_testbed(config);

    const core::DeployOutcome greedy = core::try_deploy_greedy(merged, network).value();

    core::HermesOptions milp_options;
    milp_options.milp.time_limit_seconds = 20.0;
    const core::DeployOutcome optimal = core::try_deploy_optimal(merged, network, milp_options).value();

    util::Table table({"solution", "overhead(B)", "switches", "latency(us)", "status"});
    auto add = [&](const std::string& name, const core::DeployOutcome& o) {
        table.add_row({name, util::Table::num(o.metrics.max_pair_metadata_bytes),
                       util::Table::num(o.metrics.occupied_switches),
                       util::Table::num(o.metrics.route_latency_us, 1), o.solver_status});
    };
    add("Hermes greedy", greedy);
    add("Hermes optimal", optimal);
    table.print(std::cout, "NF chain deployment (4 switches, 3 stages each)");

    const auto order = core::traversal_order(merged, greedy.deployment);
    std::cout << "\nChain traversal and per-hop NF state (greedy):\n";
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        std::int64_t bytes = 0;
        for (const tdg::Edge& e : merged.edges()) {
            if (greedy.deployment.switch_of(e.from) == order[i] &&
                greedy.deployment.switch_of(e.to) == order[i + 1]) {
                bytes += e.metadata_bytes;
            }
        }
        std::cout << "  " << network.props(order[i]).name << " -> "
                  << network.props(order[i + 1]).name << ": " << bytes
                  << " B per packet\n";
    }
    const bool ok = core::verify(merged, network, greedy.deployment).ok &&
                    core::verify(merged, network, optimal.deployment).ok;
    std::cout << "\nBoth deployments verified: " << (ok ? "yes" : "NO") << "\n";
    return ok ? 0 : 1;
}
