// In-band network telemetry (INT) over a WAN: the paper's §II example of
// inter-switch coordination. The INT source stamps switch ids and
// timestamps, transit hops append queue lengths, the sink strips and
// reports — every hop's metadata rides in packet headers. This example
// deploys an INT pipeline together with routing and congestion-control
// programs on a Table III WAN topology and shows how Hermes bounds the
// metadata each packet must carry between switches, then quantifies what
// that overhead would do to application flows.
#include <iostream>

#include "core/hermes.h"
#include "core/verifier.h"
#include "net/topozoo.h"
#include "prog/library.h"
#include "sim/flowsim.h"
#include "util/table.h"

int main() {
    using namespace hermes;

    const std::vector<prog::Program> workload = {
        prog::make_program("int_telemetry"),
        prog::make_program("l2l3_routing"),
        prog::make_program("congestion_control"),
        prog::make_program("qos_meter"),
    };
    const tdg::Tdg merged = core::analyze(workload);
    std::cout << "INT + routing + congestion-control workload: "
              << merged.node_count() << " MATs, " << merged.total_metadata_bytes()
              << " metadata bytes across dependencies\n";

    const net::Network wan = net::table3_topology(7);
    std::cout << "WAN: " << wan.switch_count() << " switches ("
              << wan.programmable_switches().size() << " programmable), "
              << wan.link_count() << " links\n\n";

    core::HermesOptions options;
    options.epsilon2 = 6;  // at most six switches may host telemetry logic
    const core::DeployOutcome outcome = core::try_deploy_greedy(merged, wan, options).value();
    const core::VerificationReport report = core::verify(merged, wan, outcome.deployment);

    std::cout << "Hermes deployment: overhead "
              << outcome.metrics.max_pair_metadata_bytes << " B per packet, "
              << outcome.metrics.occupied_switches << " switches, route latency "
              << outcome.metrics.route_latency_us / 1000.0 << " ms, verified: "
              << (report.ok ? "yes" : "NO") << "\n\n";

    // What does that overhead cost a 1 MB RPC at various MTUs?
    util::Table table({"MTU", "packets", "FCT(ms)", "goodput(Gbps)"});
    const auto hops = sim::deployment_hops(merged, wan, outcome.deployment);
    for (const int mtu : {512, 1024, 1500}) {
        sim::FlowSpec spec;
        spec.payload_bytes_total = 1 << 20;
        spec.mtu_bytes = mtu;
        spec.overhead_bytes =
            static_cast<int>(outcome.metrics.max_inflight_metadata_bytes);
        const sim::FlowResult flow = sim::simulate_flow(hops, spec);
        table.add_row({util::Table::num(std::int64_t{mtu}),
                       util::Table::num(flow.packets),
                       util::Table::num(flow.fct_us / 1000.0, 2),
                       util::Table::num(flow.goodput_gbps, 2)});
    }
    table.print(std::cout, "1 MB RPC across the INT deployment");
    return report.ok ? 0 : 1;
}
