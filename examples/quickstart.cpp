// Quickstart: the whole Hermes pipeline in one file.
//
//  1. Describe two data plane programs at the MAT level (one is parsed from
//     the textual .prog format to show the file-based route).
//  2. Analyze: merge their TDGs and size the metadata every dependency
//     carries (Algorithm 1).
//  3. Deploy with the greedy heuristic (Algorithm 2) onto a three-switch
//     programmable network.
//  4. Verify the deployment against the paper's constraints and print the
//     per-packet byte overhead it achieves.
#include <iostream>

#include "core/hermes.h"
#include "core/verifier.h"
#include "prog/parser.h"
#include "sim/testbed.h"

int main() {
    using namespace hermes;
    using tdg::Action;
    using tdg::Mat;
    using tdg::header_field;
    using tdg::metadata_field;

    // -- Program 1: built through the C++ API --------------------------------
    prog::Program lb("load_balancer");
    lb.add_mat(Mat("ecmp_group", {header_field("ipv4.dst_addr", 4)},
                   {Action{"pick_group", {metadata_field("meta.group_id", 2)}}}, 2048,
                   0.8, tdg::MatchKind::kLpm));
    lb.add_mat(Mat("ecmp_hash", {metadata_field("meta.group_id", 2)},
                   {Action{"hash", {metadata_field("meta.counter_index", 4)}}}, 64, 0.6));
    lb.add_mat(Mat("ecmp_select", {metadata_field("meta.counter_index", 4)},
                   {Action{"set_port", {metadata_field("meta.egress_port", 2)}}}, 2048,
                   0.8));

    // -- Program 2: parsed from the textual exchange format ------------------
    const prog::Program monitor = prog::parse_program(R"(
program flow_monitor
mat mon_hash capacity=16 resource=0.7
  match ipv4.src_addr:4:h ipv4.dst_addr:4:h
  write hash meta.counter_index:4:m
mat mon_count capacity=16 resource=0.9
  match meta.counter_index:4:m
  write count meta.flow_count:4:m
mat mon_report capacity=32 resource=0.5
  match meta.flow_count:4:m
  write report meta.report_flag:1:m
)");

    // -- Analyze --------------------------------------------------------------
    const tdg::Tdg merged = core::analyze({lb, monitor});
    std::cout << "Merged TDG: " << merged.node_count() << " MATs, "
              << merged.edge_count() << " dependencies, "
              << merged.total_metadata_bytes() << " total metadata bytes\n";
    for (const tdg::Edge& e : merged.edges()) {
        std::cout << "  " << merged.node(e.from).name() << " -> "
                  << merged.node(e.to).name() << "  [" << tdg::to_string(e.type) << ", "
                  << e.metadata_bytes << " B]\n";
    }

    // -- Deploy ---------------------------------------------------------------
    sim::TestbedConfig config;
    config.switch_count = 3;
    config.stages = 3;  // small switches so the deployment must span several
    const net::Network network = sim::make_testbed(config);

    const core::DeployOutcome outcome = core::try_deploy_greedy(merged, network).value();
    std::cout << "\nDeployment (greedy, " << outcome.solve_seconds * 1e3 << " ms):\n";
    for (tdg::NodeId v = 0; v < merged.node_count(); ++v) {
        const core::Placement& p = outcome.deployment.placements[v];
        std::cout << "  " << merged.node(v).name() << " -> "
                  << network.props(p.sw).name << " stage " << p.stage << "\n";
    }

    // -- Verify + report --------------------------------------------------------
    const core::VerificationReport report =
        core::verify(merged, network, outcome.deployment);
    std::cout << "\nVerified: " << (report.ok ? "yes" : "NO") << "\n"
              << "Per-packet byte overhead (max switch pair): "
              << outcome.metrics.max_pair_metadata_bytes << " B\n"
              << "Occupied switches: " << outcome.metrics.occupied_switches << "\n"
              << "Inter-switch route latency: " << outcome.metrics.route_latency_us
              << " us\n";
    return report.ok ? 0 : 1;
}
